//! Distributed LACC over the simulated machine.
//!
//! The SPMD program each rank executes is the exact algorithm of
//! [`crate::serial`], with every vector operation replaced by its
//! [`gblas::dist`] counterpart. Because serial and distributed primitives
//! resolve concurrent updates with the same monoid rules, a distributed
//! run with `permute = false` produces a parent vector *bit-identical* to
//! the serial run (tested below) — the strongest possible correctness
//! statement for the communication layer.

use crate::options::{IndexWidth, LaccOpts};
use crate::stats::{IterStats, LaccRun, StepBreakdown};
use crate::Vid;
use dmsim::{
    run_spmd_traced, Comm, DmsimError, Grid2d, MachineModel, RerunReason, SpanKind, TraceSink,
    WireWord,
};
use gblas::dist::{
    dist_assign, dist_extract, dist_extract_planned, dist_mxv, dist_mxv_dense, plan_requests,
    DistMask, DistMat, DistOpts, DistSpVec, DistVec, FusedExtract, VecLayout,
};
use gblas::{AndBool, MinUsize};
use lacc_graph::permute::Permutation;
use lacc_graph::{ensure_fits, CsrGraph, Idx};
use std::sync::Arc;
use std::time::Instant;

/// Per-rank, per-iteration record produced inside the SPMD program.
#[derive(Clone, Debug, Default)]
struct RankIter {
    active_before: usize,
    converged_after: usize,
    spmv_dense: bool,
    cond_changed: u64,
    uncond_changed: u64,
    shortcut_changed: u64,
    modeled: StepBreakdown,
    extract_received: u64,
}

/// What each rank returns from the SPMD program.
struct RankOutput {
    labels: Option<Vec<Vid>>,
    iters: Vec<RankIter>,
    final_clock_s: f64,
}

/// Star recomputation (Algorithm 6) over distributed vectors.
///
/// Returns the number of extract requests this rank received (Figure 3).
fn starcheck_dist<I: Idx + WireWord>(
    comm: &mut Comm,
    f: &DistVec<I>,
    star: &mut DistVec<bool>,
    active: &[bool],
    dist_opts: &DistOpts,
) -> u64 {
    let local_active: Vec<usize> = (0..active.len()).filter(|&o| active[o]).collect();
    for &o in &local_active {
        star.local_mut()[o] = true;
    }
    comm.charge_compute(local_active.len() as u64 + 1);
    // Grandparents of active vertices: gf[v] = f[f[v]]. Both extracts
    // below use the identical request list over same-layout vectors, so
    // the owner bucketing (and dedup) is planned once and reused.
    let reqs: Vec<I> = local_active.iter().map(|&o| f.local()[o]).collect();
    let plan = plan_requests(comm, f.layout(), &reqs, dist_opts);
    if dist_opts.combine_in_flight && dist_opts.fuse_starcheck {
        // Fused: one combining request exchange serves both reply phases
        // (the route is replayed). The parent-star phase reads `star`
        // *after* the demote assign, exactly as the unfused pair does.
        let fx = FusedExtract::begin(comm, &plan);
        let gfs = fx.extract(comm, f, &plan, dist_opts);
        let mut demote: Vec<(I, bool)> = Vec::new();
        for (&o, &gf) in local_active.iter().zip(&gfs) {
            if f.local()[o] != gf {
                star.local_mut()[o] = false;
                demote.push((gf, false));
            }
        }
        comm.charge_compute(local_active.len() as u64 + 1);
        dist_assign(comm, star, &demote, AndBool, dist_opts);
        let parent_star = fx.extract(comm, star, &plan, dist_opts);
        for (&o, &ps) in local_active.iter().zip(&parent_star) {
            star.local_mut()[o] = star.local_mut()[o] && ps;
        }
        comm.charge_compute(local_active.len() as u64 + 1);
        // Requests arrive once on this path; count them once.
        return fx.received();
    }
    let (gfs, st1) = dist_extract_planned(comm, f, &plan, dist_opts);
    let mut demote: Vec<(I, bool)> = Vec::new();
    for (&o, &gf) in local_active.iter().zip(&gfs) {
        if f.local()[o] != gf {
            star.local_mut()[o] = false;
            demote.push((gf, false));
        }
    }
    comm.charge_compute(local_active.len() as u64 + 1);
    dist_assign(comm, star, &demote, AndBool, dist_opts);
    // star[v] ← star[v] ∧ star[f[v]].
    let (parent_star, st2) = dist_extract_planned(comm, star, &plan, dist_opts);
    for (&o, &ps) in local_active.iter().zip(&parent_star) {
        star.local_mut()[o] = star.local_mut()[o] && ps;
    }
    comm.charge_compute(local_active.len() as u64 + 1);
    st1.received_requests + st2.received_requests
}

/// The SPMD body: one rank's share of a LACC run.
///
/// Generic over the index/label width `I`: parents, the matrix block, and
/// every exchanged id or label are stored (and charged on the wire) at
/// `I`'s width. The caller has already checked `ensure_fits::<I>(n)`.
fn lacc_spmd<I: Idx + WireWord>(comm: &mut Comm, g: &CsrGraph, opts: &LaccOpts) -> RankOutput {
    let n = g.num_vertices();
    let p = comm.size();
    let grid = Grid2d::square(p);
    let layout = if opts.cyclic_vectors {
        VecLayout::cyclic(n, grid)
    } else {
        VecLayout::new(n, grid)
    };
    let rank = comm.rank();
    let a = DistMat::<I>::from_graph(g, grid, rank);
    let mut f: DistVec<I> = DistVec::from_fn(layout, rank, I::from_usize);
    let mut star: DistVec<bool> = DistVec::from_fn(layout, rank, |_| true);
    let chunk_len = f.local().len();
    let mut active = vec![true; chunk_len];
    let mut active_count_global = n;
    let world = comm.world();
    let mut iters: Vec<RankIter> = Vec::new();
    // Star staleness bookkeeping, mirroring `crate::serial`: a zero-change
    // iteration proves a fixpoint only if the previous shortcut changed
    // nothing (the star vector was fresh).
    let mut prev_shortcut_changed = 0u64;

    for _iteration in 1..=opts.max_iters {
        let mut rec = RankIter {
            active_before: active_count_global,
            ..Default::default()
        };
        // --- Step 1: conditional hooking, fused with the convergence
        // detector (one (min, max)-monoid mxv; see `crate::serial`) ---
        // Each step opens a trace span; the close returns the modeled
        // duration, so StepBreakdown is a thin view over span timings.
        let span = comm.span_open(SpanKind::CondHook);
        let mask_vec: DistVec<bool> = {
            let mut m = star.clone();
            for (o, ml) in m.local_mut().iter_mut().enumerate() {
                *ml = *ml && active[o];
            }
            m
        };
        let density = if n == 0 {
            0.0
        } else {
            active_count_global as f64 / n as f64
        };
        let use_dense = density >= opts.dense_threshold;
        rec.spmv_dense = use_dense;
        let q: DistSpVec<(I, I), I> = if use_dense {
            let pairs: DistVec<(I, I)> =
                DistVec::from_fn(layout, rank, |g| (f.get_local(g), f.get_local(g)));
            dist_mxv_dense(
                comm,
                &a,
                &pairs,
                DistMask::Keep(&mask_vec),
                gblas::MinMaxUsize,
                &opts.dist,
            )
        } else {
            let entries: Vec<(I, (I, I))> = active
                .iter()
                .enumerate()
                .filter(|&(_, &act)| act)
                .map(|(o, _)| (I::from_usize(f.global_of(o)), (f.local()[o], f.local()[o])))
                .collect();
            let x = DistSpVec::from_local_entries(layout, rank, entries);
            // Adaptive dispatch (§V-A): even when the active fraction is
            // below `dense_threshold`, the measured fill decides whether the
            // local multiply runs SpMV- or SpMSpV-style.
            dist_mxv(
                comm,
                &a,
                &x,
                DistMask::Keep(&mask_vec),
                gblas::MinMaxUsize,
                &opts.dist,
            )
        };

        // Converged-component tracking (Lemma 1, strengthened; evaluated
        // on the start-of-iteration state, same rule as `crate::serial`).
        let mut newly_converged = 0u64;
        if opts.use_sparsity {
            let mut root_quiet: DistVec<bool> = DistVec::from_fn(layout, rank, |_| true);
            let demote: Vec<(I, bool)> = q
                .entries()
                .iter()
                .filter(|&&(v, (lo, hi))| {
                    let fv = f.get_local(v.idx());
                    !(lo == fv && hi == fv)
                })
                .map(|&(v, _)| (f.get_local(v.idx()), false))
                .collect();
            dist_assign(comm, &mut root_quiet, &demote, AndBool, &opts.dist);
            let candidates: Vec<usize> = (0..chunk_len)
                .filter(|&o| active[o] && star.local()[o])
                .collect();
            let reqs: Vec<I> = candidates.iter().map(|&o| f.local()[o]).collect();
            let (flags, st) = dist_extract(comm, &root_quiet, &reqs, &opts.dist);
            rec.extract_received += st.received_requests;
            for (&o, &quiet) in candidates.iter().zip(&flags) {
                if quiet {
                    active[o] = false;
                    newly_converged += 1;
                }
            }
            comm.charge_compute(chunk_len as u64 + 1);
        }

        // Conditional hooks from the fused sweep (skip just-deactivated
        // vertices; their hooks are no-ops).
        let updates: Vec<(I, I)> = q
            .entries()
            .iter()
            .filter(|&&(v, _)| active[layout.offset_of(rank, v.idx())])
            .map(|&(v, (lo, _))| {
                let fv = f.get_local(v.idx());
                (fv, lo.min(fv))
            })
            .collect();
        rec.cond_changed = dist_assign(comm, &mut f, &updates, MinUsize, &opts.dist).0 as u64;
        rec.modeled.cond_s += comm.span_close(span);

        let span = comm.span_open(SpanKind::Starcheck);
        rec.extract_received += starcheck_dist(comm, &f, &mut star, &active, &opts.dist);
        rec.modeled.starcheck_s += comm.span_close(span);

        // --- Step 2: unconditional hooking ---
        let span = comm.span_open(SpanKind::UncondHook);
        let entries: Vec<(I, I)> = active
            .iter()
            .enumerate()
            .filter(|&(o, &act)| act && !star.local()[o])
            .map(|(o, _)| (I::from_usize(f.global_of(o)), f.local()[o]))
            .collect();
        let x = DistSpVec::from_local_entries(layout, rank, entries);
        let mask_vec2: DistVec<bool> = {
            let mut m = star.clone();
            for (o, ml) in m.local_mut().iter_mut().enumerate() {
                *ml = *ml && active[o];
            }
            m
        };
        let fn2 = dist_mxv(
            comm,
            &a,
            &x,
            DistMask::Keep(&mask_vec2),
            MinUsize,
            &opts.dist,
        );
        let updates2: Vec<(I, I)> = fn2
            .entries()
            .iter()
            .map(|&(v, m)| (f.get_local(v.idx()), m))
            .collect();
        rec.uncond_changed = dist_assign(comm, &mut f, &updates2, MinUsize, &opts.dist).0 as u64;
        rec.modeled.uncond_s += comm.span_close(span);

        let span = comm.span_open(SpanKind::Starcheck);
        rec.extract_received += starcheck_dist(comm, &f, &mut star, &active, &opts.dist);
        rec.modeled.starcheck_s += comm.span_close(span);

        // --- Step 3: shortcutting (active nonstars) ---
        let span = comm.span_open(SpanKind::Shortcut);
        let targets: Vec<usize> = (0..chunk_len)
            .filter(|&o| active[o] && !star.local()[o])
            .collect();
        let reqs: Vec<I> = targets.iter().map(|&o| f.local()[o]).collect();
        let (gfs, st) = dist_extract(comm, &f, &reqs, &opts.dist);
        rec.extract_received += st.received_requests;
        for (&o, &gf) in targets.iter().zip(&gfs) {
            if f.local()[o] != gf {
                f.local_mut()[o] = gf;
                rec.shortcut_changed += 1;
            }
        }
        comm.charge_compute(targets.len() as u64 + 1);
        rec.modeled.shortcut_s += comm.span_close(span);

        // --- Global convergence test ---
        let local = [
            rec.cond_changed,
            rec.uncond_changed,
            rec.shortcut_changed,
            newly_converged,
        ];
        let global = comm.allreduce(&world, local, |a, b| {
            [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
        });
        rec.cond_changed = global[0];
        rec.uncond_changed = global[1];
        rec.shortcut_changed = global[2];
        active_count_global -= global[3] as usize;
        rec.converged_after = n - active_count_global;
        // Fixpoint only counts with a fresh star vector (see the serial
        // implementation's staleness note).
        let done = global[0] + global[1] + global[2] == 0 && prev_shortcut_changed == 0;
        prev_shortcut_changed = global[2];
        iters.push(rec);
        if done {
            break;
        }
    }

    // Widen back to `Vid` at the boundary: callers always see full-width
    // labels regardless of the in-run storage width.
    let labels: Vec<Vid> = f.to_global(comm).into_iter().map(|l| l.idx()).collect();
    RankOutput {
        labels: (rank == 0).then_some(labels),
        iters,
        final_clock_s: comm.clock_s(),
    }
}

/// Runs distributed LACC on `p` simulated ranks under `model`.
///
/// `p` must be a perfect square (CombBLAS' square-grid restriction,
/// §VI-A). Returns labels in the *original* vertex numbering even when
/// `opts.permute` applies a load-balancing relabeling internally. Errs
/// with the failing rank and panic payload if any rank panics.
///
/// ```
/// use lacc::{run_distributed, LaccOpts};
/// use lacc_graph::generators::cycle_graph;
///
/// let g = cycle_graph(64);
/// let run = run_distributed(&g, 4, dmsim::EDISON.lacc_model(), &LaccOpts::default())
///     .expect("no rank panicked");
/// assert_eq!(run.num_components(), 1);
/// assert!(run.modeled_total_s > 0.0);
/// ```
pub fn run_distributed(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
    opts: &LaccOpts,
) -> Result<LaccRun, DmsimError> {
    run_distributed_traced(g, p, model, opts, None)
}

/// [`run_distributed`] with span tracing: when `sink` is `Some`, every
/// rank records spans (LACC steps, distributed ops, collectives — gated
/// by the sink's [`dmsim::TraceLevel`]) into it, ready for
/// [`dmsim::TraceSink::chrome_trace_json`] and
/// [`dmsim::TraceSink::report`]. Tracing never perturbs results or
/// modeled costs (tested below).
pub fn run_distributed_traced(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
    opts: &LaccOpts,
    sink: Option<&Arc<TraceSink>>,
) -> Result<LaccRun, DmsimError> {
    run_distributed_inner(g, p, model, opts, sink, None)
}

/// [`run_distributed_traced`] invoked as a serving-layer **epoch rebuild**:
/// identical computation, but every rank wraps the whole run in a
/// [`dmsim::SpanKind::Rerun`] span tagged with the triggering `reason`
/// (deletion vs staleness threshold vs bootstrap) and notes the rerun in
/// its [`dmsim::CostSnapshot`], so rebuild causes and counts surface in
/// the aggregate trace report. Labels and modeled costs are bit-identical
/// to a plain [`run_distributed_traced`] call (tested below).
pub fn run_distributed_rerun(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
    opts: &LaccOpts,
    sink: Option<&Arc<TraceSink>>,
    reason: RerunReason,
) -> Result<LaccRun, DmsimError> {
    run_distributed_inner(g, p, model, opts, sink, Some(reason))
}

fn run_distributed_inner(
    g: &CsrGraph,
    p: usize,
    model: MachineModel,
    opts: &LaccOpts,
    sink: Option<&Arc<TraceSink>>,
    rerun: Option<RerunReason>,
) -> Result<LaccRun, DmsimError> {
    let n = g.num_vertices();
    let _ = Grid2d::square(p); // validate early
                               // Clamp the per-rank kernel thread request so p ranks × T threads never
                               // oversubscribe the host (all simulated ranks run concurrently).
    let mut opts = *opts;
    opts.dist.kernel_threads = opts.kernel_threads_for(p);
    let opts = &opts;
    let (work_graph, perm) = if opts.permute && n > 1 {
        let perm = Permutation::random(n, opts.permute_seed);
        (perm.permute_graph(g), Some(perm))
    } else {
        (g.clone(), None)
    };
    // The narrow layout is validated up front against the actual graph:
    // a too-large graph is a descriptive error on the caller thread, never
    // a silent truncation inside the SPMD body.
    if opts.index_width == IndexWidth::U32 {
        if let Err(e) = ensure_fits::<u32>(n, "vertices") {
            return Err(DmsimError {
                rank: 0,
                payload: Box::new(e.to_string()),
            });
        }
    }
    let wall_start = Instant::now();
    let spmd = |comm: &mut Comm| {
        // An epoch rebuild counts itself (on rank 0, so sums over
        // snapshots count each rebuild once) and wraps the whole SPMD
        // body in a reason-tagged span; both are observational.
        let span = rerun.map(|reason| {
            if comm.rank() == 0 {
                comm.note_rerun();
            }
            comm.span_open(SpanKind::Rerun(reason))
        });
        let out = match opts.index_width {
            IndexWidth::U32 => lacc_spmd::<u32>(comm, &work_graph, opts),
            IndexWidth::U64 => lacc_spmd::<usize>(comm, &work_graph, opts),
        };
        if let Some(span) = span {
            comm.span_close(span);
        }
        out
    };
    let outs = run_spmd_traced(p, model, sink, spmd)?;
    let wall_s = wall_start.elapsed().as_secs_f64();

    let labels_permuted = outs[0].labels.clone().expect("rank 0 returns labels");
    let labels = match &perm {
        Some(perm) => perm.unpermute_labels(&labels_permuted),
        None => labels_permuted,
    };
    let modeled_total_s = outs.iter().map(|o| o.final_clock_s).fold(0.0f64, f64::max);
    let niters = outs[0].iters.len();
    debug_assert!(outs.iter().all(|o| o.iters.len() == niters));
    let iters: Vec<IterStats> = (0..niters)
        .map(|k| {
            let r0 = &outs[0].iters[k];
            let max_over = |sel: fn(&StepBreakdown) -> f64| {
                outs.iter()
                    .map(|o| sel(&o.iters[k].modeled))
                    .fold(0.0f64, f64::max)
            };
            IterStats {
                iteration: k + 1,
                active_before: r0.active_before,
                converged_after: r0.converged_after,
                spmv_dense: r0.spmv_dense,
                cond_changed: r0.cond_changed as usize,
                uncond_changed: r0.uncond_changed as usize,
                shortcut_changed: r0.shortcut_changed as usize,
                modeled: StepBreakdown {
                    cond_s: max_over(|b| b.cond_s),
                    uncond_s: max_over(|b| b.uncond_s),
                    shortcut_s: max_over(|b| b.shortcut_s),
                    starcheck_s: max_over(|b| b.starcheck_s),
                },
                extract_received: outs.iter().map(|o| o.iters[k].extract_received).collect(),
            }
        })
        .collect();

    Ok(LaccRun {
        labels,
        iters,
        p,
        modeled_total_s,
        wall_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::lacc_serial;
    use dmsim::EDISON;
    use lacc_graph::generators::*;
    use lacc_graph::stats::ground_truth_labels;
    use lacc_graph::unionfind::canonicalize_labels;

    fn model() -> MachineModel {
        EDISON.lacc_model()
    }

    fn check(g: &CsrGraph, p: usize, opts: &LaccOpts) -> LaccRun {
        let run = run_distributed(g, p, model(), opts).unwrap();
        assert_eq!(
            canonicalize_labels(&run.labels),
            ground_truth_labels(g),
            "wrong components at p={p}"
        );
        run
    }

    #[test]
    fn correct_across_grid_sizes() {
        let g = erdos_renyi_gnm(200, 300, 5);
        for p in [1, 4, 9, 16] {
            check(&g, p, &LaccOpts::default());
        }
    }

    #[test]
    fn bit_identical_to_serial_without_permutation() {
        let opts = LaccOpts {
            permute: false,
            ..LaccOpts::default()
        };
        for seed in 0..3 {
            let g = community_graph(600, 30, 3.0, 1.4, seed);
            let serial = lacc_serial(&g, &opts);
            for p in [4, 9] {
                let dist = run_distributed(&g, p, model(), &opts).unwrap();
                assert_eq!(dist.labels, serial.labels, "seed={seed} p={p}");
                // Same iteration trajectory too.
                assert_eq!(dist.num_iterations(), serial.num_iterations());
                for (a, b) in dist.iters.iter().zip(&serial.iters) {
                    assert_eq!(a.cond_changed, b.cond_changed);
                    assert_eq!(a.uncond_changed, b.uncond_changed);
                    assert_eq!(a.shortcut_changed, b.shortcut_changed);
                    assert_eq!(a.converged_after, b.converged_after);
                }
            }
        }
    }

    #[test]
    fn permutation_preserves_partition() {
        let g = rmat(8, 4, RmatParams::graph500(), 9);
        let run = check(&g, 4, &LaccOpts::default());
        assert!(run.num_iterations() > 0);
    }

    #[test]
    fn works_with_all_comm_configs() {
        let g = metagenome_graph(800, 6, 0.01, 3);
        for opts in [
            LaccOpts::default(),
            LaccOpts::naive_comm(),
            LaccOpts::dense_as(),
        ] {
            check(&g, 4, &opts);
        }
    }

    #[test]
    fn path_worst_case_distributed() {
        let g = path_graph(1000);
        let run = check(&g, 16, &LaccOpts::default());
        assert_eq!(run.num_components(), 1);
        assert!(run.modeled_total_s > 0.0);
    }

    #[test]
    fn stats_are_populated() {
        let g = community_graph(2000, 100, 3.0, 1.4, 8);
        let run = check(&g, 4, &LaccOpts::default());
        assert_eq!(run.p, 4);
        let last = run.iters.last().unwrap();
        assert_eq!(last.converged_after, 2000);
        assert_eq!(run.iters[0].extract_received.len(), 4);
        assert!(run.breakdown().total() > 0.0);
        assert!(run.modeled_total_s >= run.breakdown().total() * 0.5);
    }

    #[test]
    fn single_vertex_and_empty() {
        check(
            &CsrGraph::from_edges(lacc_graph::EdgeList::new(1)),
            4,
            &LaccOpts::default(),
        );
        check(
            &CsrGraph::from_edges(lacc_graph::EdgeList::new(0)),
            1,
            &LaccOpts::default(),
        );
    }

    #[test]
    fn more_ranks_than_vertices() {
        let g = path_graph(7);
        check(&g, 16, &LaccOpts::default());
    }

    #[test]
    fn cyclic_vectors_match_blocked_bitwise() {
        // §VII future-work layout: a different distribution must change
        // communication, never results — with permutation disabled the
        // parent vectors are bit-identical.
        for seed in 0..2 {
            let g = community_graph(700, 35, 3.0, 1.4, seed);
            let blocked = LaccOpts {
                permute: false,
                ..LaccOpts::default()
            };
            let cyclic = LaccOpts {
                permute: false,
                cyclic_vectors: true,
                ..LaccOpts::default()
            };
            for p in [4, 9, 16] {
                let a = run_distributed(&g, p, model(), &blocked).unwrap();
                let b = run_distributed(&g, p, model(), &cyclic).unwrap();
                assert_eq!(a.labels, b.labels, "seed={seed} p={p}");
            }
        }
    }

    #[test]
    fn cyclic_correct_on_families() {
        let opts = LaccOpts::cyclic();
        check(&path_graph(300), 4, &opts);
        check(&rmat(7, 4, RmatParams::graph500(), 2), 9, &opts);
        check(&metagenome_graph(600, 6, 0.01, 3), 16, &opts);
    }

    #[test]
    fn index_widths_produce_identical_labels() {
        // The tentpole guarantee of the narrow layout: storage width is
        // invisible in the results — u32 and u64 runs agree bit for bit
        // (after widening) on every comm config and vector layout.
        for seed in 0..2 {
            let g = community_graph(500, 25, 3.0, 1.4, seed);
            for base in [
                LaccOpts::default(),
                LaccOpts::naive_comm(),
                LaccOpts::cyclic(),
            ] {
                let narrow = LaccOpts {
                    index_width: IndexWidth::U32,
                    ..base
                };
                let wide = LaccOpts {
                    index_width: IndexWidth::U64,
                    ..base
                };
                for p in [4, 9] {
                    let a = run_distributed(&g, p, model(), &narrow).unwrap();
                    let b = run_distributed(&g, p, model(), &wide).unwrap();
                    assert_eq!(a.labels, b.labels, "seed={seed} p={p}");
                    assert_eq!(a.num_iterations(), b.num_iterations(), "seed={seed} p={p}");
                }
            }
        }
    }

    #[test]
    fn narrow_width_matches_serial_bitwise() {
        let opts = LaccOpts {
            permute: false,
            index_width: IndexWidth::U32,
            ..LaccOpts::default()
        };
        let g = community_graph(600, 30, 3.0, 1.4, 1);
        let serial = lacc_serial(&g, &opts);
        let dist = run_distributed(&g, 4, model(), &opts).unwrap();
        assert_eq!(dist.labels, serial.labels);
    }

    #[test]
    fn tracing_is_observation_only() {
        // The tentpole guarantee: turning tracing on (even at the most
        // verbose level) changes neither the labels nor any modeled
        // statistic, bit for bit.
        use dmsim::TraceLevel;
        let g = rmat(8, 4, RmatParams::graph500(), 11);
        let opts = LaccOpts::default();
        let off = run_distributed(&g, 4, model(), &opts).unwrap();
        let sink = TraceSink::new(TraceLevel::Collectives);
        let on = run_distributed_traced(&g, 4, model(), &opts, Some(&sink)).unwrap();
        assert_eq!(off.labels, on.labels);
        assert_eq!(off.num_iterations(), on.num_iterations());
        assert_eq!(off.modeled_total_s, on.modeled_total_s);
        for (a, b) in off.iters.iter().zip(&on.iters) {
            assert_eq!(a.modeled, b.modeled);
            assert_eq!(a.extract_received, b.extract_received);
        }
        // The traced run actually recorded the full hierarchy: all four
        // LACC steps, the distributed ops, and the collectives under them.
        let report = sink.report();
        for name in [
            "cond_hook",
            "uncond_hook",
            "shortcut",
            "starcheck",
            "mxv",
            "assign",
            "extract",
            "allgatherv",
        ] {
            assert!(report.kind_time_s(name) > 0.0, "missing span kind {name}");
        }
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"cond_hook\""));
        assert!(report.load_imbalance >= 1.0);
    }

    #[test]
    fn rerun_entry_is_bit_identical_and_tagged() {
        use dmsim::TraceLevel;
        let g = rmat(8, 4, RmatParams::graph500(), 13);
        let opts = LaccOpts::default();
        let plain = run_distributed(&g, 4, model(), &opts).unwrap();
        let sink = TraceSink::new(TraceLevel::Steps);
        let rerun =
            run_distributed_rerun(&g, 4, model(), &opts, Some(&sink), RerunReason::Deletion)
                .unwrap();
        // The rerun wrapper is observational: same labels, same clock.
        assert_eq!(plain.labels, rerun.labels);
        assert_eq!(plain.modeled_total_s, rerun.modeled_total_s);
        let report = sink.report();
        assert_eq!(report.reruns, 1);
        assert!(report.kind_time_s("rerun(deletion)") > 0.0);
        assert_eq!(report.kind_time_s("rerun(staleness)"), 0.0);
        // Two reruns into the same sink accumulate, and the max-over-ranks
        // aggregation counts each p-rank rebuild once.
        run_distributed_rerun(&g, 4, model(), &opts, Some(&sink), RerunReason::Staleness).unwrap();
        let report = sink.report();
        assert_eq!(report.reruns, 2);
        assert!(report.kind_time_s("rerun(staleness)") > 0.0);
    }

    #[test]
    fn panicking_rank_surfaces_as_error() {
        // p = 2 is not a perfect square; the grid assertion fires inside
        // every rank and must come back as a typed error, not a crash.
        let g = path_graph(10);
        let err = std::panic::catch_unwind(|| {
            let _ = run_distributed(&g, 2, model(), &LaccOpts::default());
        });
        // Grid validation happens eagerly on the caller thread.
        assert!(err.is_err());
    }

    #[test]
    fn cyclic_balances_extract_requests() {
        // The point of the layout: after min-hooking concentrates parents
        // at low ids, the blocked layout funnels extract requests to low
        // ranks; cyclic spreads them. Compare the max/avg imbalance of
        // per-rank received requests summed over the run.
        let g = rmat(10, 8, RmatParams::graph500(), 5);
        let p = 16;
        let imbalance = |opts: &LaccOpts| {
            let run = run_distributed(&g, p, model(), opts).unwrap();
            let mut per_rank = vec![0u64; p];
            for it in &run.iters {
                for (r, &x) in it.extract_received.iter().enumerate() {
                    per_rank[r] += x;
                }
            }
            let max = *per_rank.iter().max().unwrap() as f64;
            let avg = per_rank.iter().sum::<u64>() as f64 / p as f64;
            max / avg.max(1.0)
        };
        // Disable the hot-rank broadcast so the raw skew is measured, and
        // the permutation so ids stay adversarial.
        let blocked = LaccOpts {
            permute: false,
            ..LaccOpts::naive_comm()
        };
        let cyclic = LaccOpts {
            permute: false,
            cyclic_vectors: true,
            ..LaccOpts::naive_comm()
        };
        let (ib, ic) = (imbalance(&blocked), imbalance(&cyclic));
        assert!(
            ic < ib,
            "cyclic should balance extract traffic: blocked {ib:.2}x vs cyclic {ic:.2}x"
        );
    }
}
