//! Per-iteration instrumentation.
//!
//! These records are the raw material of the paper's analysis figures:
//! Figure 7 (fraction of vertices in converged components per iteration),
//! Figure 8 (per-step time breakdown), and Figure 3 (per-rank extract
//! request counts).
//!
//! Since the trace subsystem landed, [`StepBreakdown`] is a thin view
//! over span durations: `crate::dist` opens a [`dmsim::SpanKind`] step
//! span around each LACC step and records the modeled seconds the close
//! returns, instead of hand-differencing clock snapshots. Full span
//! streams (per rank, with nesting down to individual collectives) are
//! available through [`dmsim::TraceSink`] via [`crate::run`] with
//! [`crate::RunConfig::with_trace`].

use crate::Vid;

/// Modeled seconds attributed to each of the four LACC steps (Figure 8's
/// categories). Starcheck aggregates all in-iteration star refreshes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepBreakdown {
    /// Conditional hooking.
    pub cond_s: f64,
    /// Unconditional hooking.
    pub uncond_s: f64,
    /// Shortcutting.
    pub shortcut_s: f64,
    /// Star membership maintenance.
    pub starcheck_s: f64,
}

impl StepBreakdown {
    /// Total across the four steps.
    pub fn total(&self) -> f64 {
        self.cond_s + self.uncond_s + self.shortcut_s + self.starcheck_s
    }

    /// Componentwise sum.
    pub fn add(&mut self, other: &StepBreakdown) {
        self.cond_s += other.cond_s;
        self.uncond_s += other.uncond_s;
        self.shortcut_s += other.shortcut_s;
        self.starcheck_s += other.starcheck_s;
    }
}

/// Statistics for one LACC iteration.
#[derive(Clone, Debug, Default)]
pub struct IterStats {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Vertices still active (not in converged components) at iteration
    /// start.
    pub active_before: usize,
    /// Cumulative vertices in converged components after this iteration
    /// (Figure 7 plots this as a percentage of n).
    pub converged_after: usize,
    /// Whether the conditional-hooking `mxv` took the dense (SpMV) path.
    pub spmv_dense: bool,
    /// Parent updates applied by conditional hooking.
    pub cond_changed: usize,
    /// Parent updates applied by unconditional hooking.
    pub uncond_changed: usize,
    /// Parent updates applied by shortcutting.
    pub shortcut_changed: usize,
    /// Modeled per-step times (zeros for serial runs).
    pub modeled: StepBreakdown,
    /// Extract requests received per rank during this iteration's
    /// grandparent gathers (Figure 3; empty for serial runs).
    pub extract_received: Vec<u64>,
}

impl IterStats {
    /// Total parent updates in this iteration — zero means converged.
    pub fn total_changed(&self) -> usize {
        self.cond_changed + self.uncond_changed + self.shortcut_changed
    }
}

/// The result of a LACC run.
#[derive(Clone, Debug)]
pub struct LaccRun {
    /// Component label per vertex (the root id of its tree).
    pub labels: Vec<Vid>,
    /// Per-iteration statistics.
    pub iters: Vec<IterStats>,
    /// Ranks used (1 for serial).
    pub p: usize,
    /// Modeled makespan in seconds (0 for serial).
    pub modeled_total_s: f64,
    /// Wall-clock seconds of the run.
    pub wall_s: f64,
}

impl LaccRun {
    /// Number of iterations until convergence.
    pub fn num_iterations(&self) -> usize {
        self.iters.len()
    }

    /// Number of connected components found.
    pub fn num_components(&self) -> usize {
        lacc_graph::unionfind::count_components(&lacc_graph::unionfind::canonicalize_labels(
            &self.labels,
        ))
    }

    /// Summed per-step modeled breakdown across iterations.
    pub fn breakdown(&self) -> StepBreakdown {
        let mut total = StepBreakdown::default();
        for it in &self.iters {
            total.add(&it.modeled);
        }
        total
    }

    /// Fraction of vertices converged after each iteration (Figure 7's
    /// series).
    pub fn converged_fractions(&self) -> Vec<f64> {
        let n = self.labels.len().max(1) as f64;
        self.iters
            .iter()
            .map(|it| it.converged_after as f64 / n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let mut b = StepBreakdown {
            cond_s: 1.0,
            uncond_s: 2.0,
            shortcut_s: 3.0,
            starcheck_s: 4.0,
        };
        assert_eq!(b.total(), 10.0);
        b.add(&StepBreakdown {
            cond_s: 1.0,
            ..Default::default()
        });
        assert_eq!(b.cond_s, 2.0);
    }

    #[test]
    fn run_summaries() {
        let run = LaccRun {
            labels: vec![0, 0, 2, 2, 2],
            iters: vec![
                IterStats {
                    iteration: 1,
                    converged_after: 2,
                    cond_changed: 3,
                    ..Default::default()
                },
                IterStats {
                    iteration: 2,
                    converged_after: 5,
                    ..Default::default()
                },
            ],
            p: 4,
            modeled_total_s: 1.5,
            wall_s: 0.1,
        };
        assert_eq!(run.num_components(), 2);
        assert_eq!(run.num_iterations(), 2);
        assert_eq!(run.converged_fractions(), vec![0.4, 1.0]);
        assert_eq!(run.iters[0].total_changed(), 3);
    }
}
