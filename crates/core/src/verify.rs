//! Label verification: the checks a downstream consumer should run on any
//! connected-components output, plus the brute-force [`CcOracle`] those
//! checks (and the serving layer's tests) compare against.

use crate::Vid;
use lacc_graph::CsrGraph;
use std::collections::VecDeque;

/// Brute-force connected-components oracle: one BFS sweep over an
/// explicit edge multiset, answering the same queries as the serving
/// layer (`find` / `same_component` / `component_size`) from first
/// principles.
///
/// Labels are canonical (every vertex carries the minimum vertex id of
/// its component), so two oracles — or an oracle and a canonicalized
/// algorithm output — compare with `==`. Both the serving proptests and
/// [`verify_labels`]' merged-component check are built on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CcOracle {
    labels: Vec<Vid>,
    sizes: Vec<usize>,
    components: usize,
}

impl CcOracle {
    /// Builds the oracle by BFS over `edges` on the vertex set `0..n`.
    /// Self loops and duplicate edges are tolerated (it is a multiset).
    ///
    /// # Panics
    /// If an endpoint is not in `0..n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (Vid, Vid)>) -> Self {
        let mut adj: Vec<Vec<Vid>> = vec![Vec::new(); n];
        for (u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            if u != v {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
        let mut labels: Vec<Vid> = vec![usize::MAX; n];
        let mut queue: VecDeque<Vid> = VecDeque::new();
        let mut sizes = vec![0usize; n];
        let mut components = 0;
        // Sources are scanned in ascending id order, so each BFS labels
        // its component with the component's minimum vertex id.
        for s in 0..n {
            if labels[s] != usize::MAX {
                continue;
            }
            components += 1;
            labels[s] = s;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                sizes[s] += 1;
                for &w in &adj[u] {
                    if labels[w] == usize::MAX {
                        labels[w] = s;
                        queue.push_back(w);
                    }
                }
            }
        }
        CcOracle {
            labels,
            sizes,
            components,
        }
    }

    /// Builds the oracle from a graph's edge set.
    pub fn from_graph(g: &CsrGraph) -> Self {
        Self::from_edges(g.num_vertices(), g.edges())
    }

    /// The canonical component id (minimum member vertex id) of `u`.
    pub fn find(&self, u: Vid) -> Vid {
        self.labels[u]
    }

    /// Whether `u` and `v` are connected.
    pub fn same_component(&self, u: Vid, v: Vid) -> bool {
        self.labels[u] == self.labels[v]
    }

    /// Number of vertices in `u`'s component.
    pub fn component_size(&self, u: Vid) -> usize {
        self.sizes[self.labels[u]]
    }

    /// The full canonical label vector.
    pub fn labels(&self) -> &[Vid] {
        &self.labels
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

/// Errors a labeling can exhibit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelError {
    /// Label vector length differs from the vertex count.
    WrongLength {
        /// Expected number of labels.
        expected: usize,
        /// Number of labels supplied.
        got: usize,
    },
    /// A label is not a valid vertex id.
    OutOfRange {
        /// Vertex carrying the bad label.
        vertex: Vid,
        /// The bad label.
        label: Vid,
    },
    /// The two endpoints of an edge carry different labels (a component
    /// was split).
    EdgeSplit {
        /// Edge endpoint u.
        u: Vid,
        /// Edge endpoint v.
        v: Vid,
    },
    /// Two vertices share a label without being connected (components were
    /// merged). Reports the representative vertices of the two sets.
    Merged {
        /// A vertex of the first true component.
        a: Vid,
        /// A vertex of the second true component sharing `a`'s label.
        b: Vid,
    },
}

impl std::fmt::Display for LabelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabelError::WrongLength { expected, got } => {
                write!(
                    f,
                    "label vector has {got} entries, graph has {expected} vertices"
                )
            }
            LabelError::OutOfRange { vertex, label } => {
                write!(f, "vertex {vertex} carries out-of-range label {label}")
            }
            LabelError::EdgeSplit { u, v } => {
                write!(f, "edge ({u},{v}) spans two labels: component split")
            }
            LabelError::Merged { a, b } => {
                write!(
                    f,
                    "vertices {a} and {b} share a label but are not connected"
                )
            }
        }
    }
}

impl std::error::Error for LabelError {}

/// Verifies that `labels` is exactly the connected-component partition of
/// `g`: every edge is label-monochromatic and no two true components share
/// a label.
pub fn verify_labels(g: &CsrGraph, labels: &[Vid]) -> Result<(), LabelError> {
    let n = g.num_vertices();
    if labels.len() != n {
        return Err(LabelError::WrongLength {
            expected: n,
            got: labels.len(),
        });
    }
    for (v, &l) in labels.iter().enumerate() {
        if l >= n {
            return Err(LabelError::OutOfRange {
                vertex: v,
                label: l,
            });
        }
    }
    // No split components: edges are monochromatic.
    for (u, v) in g.edges() {
        if labels[u] != labels[v] {
            return Err(LabelError::EdgeSplit { u, v });
        }
    }
    // No merged components: within each label class, the true component of
    // its first member must cover the whole class. Truth comes from the
    // same BFS oracle the serving tests use.
    let truth = CcOracle::from_graph(g);
    let mut rep_of_label: Vec<Option<Vid>> = vec![None; n];
    for v in 0..n {
        match rep_of_label[labels[v]] {
            None => rep_of_label[labels[v]] = Some(v),
            Some(rep) => {
                if !truth.same_component(rep, v) {
                    return Err(LabelError::Merged { a: rep, b: v });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lacc_serial, LaccOpts};
    use lacc_graph::generators::{community_graph, path_graph};
    use lacc_graph::stats::ground_truth_labels;

    #[test]
    fn accepts_correct_labelings() {
        let g = community_graph(600, 30, 3.0, 1.4, 3);
        let run = lacc_serial(&g, &LaccOpts::default());
        assert_eq!(verify_labels(&g, &run.labels), Ok(()));
        assert_eq!(verify_labels(&g, &ground_truth_labels(&g)), Ok(()));
    }

    #[test]
    fn rejects_wrong_length_and_range() {
        let g = path_graph(5);
        assert!(matches!(
            verify_labels(&g, &[0, 0, 0]),
            Err(LabelError::WrongLength {
                expected: 5,
                got: 3
            })
        ));
        assert!(matches!(
            verify_labels(&g, &[0, 0, 0, 0, 9]),
            Err(LabelError::OutOfRange {
                vertex: 4,
                label: 9
            })
        ));
    }

    #[test]
    fn rejects_split_components() {
        let g = path_graph(4);
        // Splits the path in the middle.
        let err = verify_labels(&g, &[0, 0, 2, 2]).unwrap_err();
        assert!(matches!(err, LabelError::EdgeSplit { .. }));
    }

    #[test]
    fn oracle_matches_ground_truth_labels() {
        let g = community_graph(400, 20, 3.0, 1.4, 11);
        let oracle = CcOracle::from_graph(&g);
        assert_eq!(oracle.labels(), &ground_truth_labels(&g)[..]);
        assert_eq!(
            oracle.num_components(),
            lacc_graph::unionfind::count_components(oracle.labels())
        );
    }

    #[test]
    fn oracle_answers_queries_on_multiset() {
        // Duplicates and self loops must not perturb the answers.
        let oracle = CcOracle::from_edges(6, [(0, 1), (1, 0), (3, 3), (1, 2), (4, 5), (1, 2)]);
        assert_eq!(oracle.find(2), 0);
        assert_eq!(oracle.find(3), 3);
        assert!(oracle.same_component(0, 2));
        assert!(!oracle.same_component(0, 4));
        assert_eq!(oracle.component_size(1), 3);
        assert_eq!(oracle.component_size(3), 1);
        assert_eq!(oracle.component_size(5), 2);
        assert_eq!(oracle.num_components(), 3);
    }

    #[test]
    fn rejects_merged_components() {
        // Two disjoint edges labeled identically.
        let g =
            lacc_graph::CsrGraph::from_edges(lacc_graph::EdgeList::from_pairs(4, [(0, 1), (2, 3)]));
        let err = verify_labels(&g, &[0, 0, 0, 0]).unwrap_err();
        assert!(matches!(err, LabelError::Merged { .. }));
    }
}
