//! Label verification: the checks a downstream consumer should run on any
//! connected-components output.

use crate::Vid;
use lacc_graph::CsrGraph;

/// Errors a labeling can exhibit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelError {
    /// Label vector length differs from the vertex count.
    WrongLength {
        /// Expected number of labels.
        expected: usize,
        /// Number of labels supplied.
        got: usize,
    },
    /// A label is not a valid vertex id.
    OutOfRange {
        /// Vertex carrying the bad label.
        vertex: Vid,
        /// The bad label.
        label: Vid,
    },
    /// The two endpoints of an edge carry different labels (a component
    /// was split).
    EdgeSplit {
        /// Edge endpoint u.
        u: Vid,
        /// Edge endpoint v.
        v: Vid,
    },
    /// Two vertices share a label without being connected (components were
    /// merged). Reports the representative vertices of the two sets.
    Merged {
        /// A vertex of the first true component.
        a: Vid,
        /// A vertex of the second true component sharing `a`'s label.
        b: Vid,
    },
}

impl std::fmt::Display for LabelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabelError::WrongLength { expected, got } => {
                write!(
                    f,
                    "label vector has {got} entries, graph has {expected} vertices"
                )
            }
            LabelError::OutOfRange { vertex, label } => {
                write!(f, "vertex {vertex} carries out-of-range label {label}")
            }
            LabelError::EdgeSplit { u, v } => {
                write!(f, "edge ({u},{v}) spans two labels: component split")
            }
            LabelError::Merged { a, b } => {
                write!(
                    f,
                    "vertices {a} and {b} share a label but are not connected"
                )
            }
        }
    }
}

impl std::error::Error for LabelError {}

/// Verifies that `labels` is exactly the connected-component partition of
/// `g`: every edge is label-monochromatic and no two true components share
/// a label.
pub fn verify_labels(g: &CsrGraph, labels: &[Vid]) -> Result<(), LabelError> {
    let n = g.num_vertices();
    if labels.len() != n {
        return Err(LabelError::WrongLength {
            expected: n,
            got: labels.len(),
        });
    }
    for (v, &l) in labels.iter().enumerate() {
        if l >= n {
            return Err(LabelError::OutOfRange {
                vertex: v,
                label: l,
            });
        }
    }
    // No split components: edges are monochromatic.
    for (u, v) in g.edges() {
        if labels[u] != labels[v] {
            return Err(LabelError::EdgeSplit { u, v });
        }
    }
    // No merged components: within each label class, the true component of
    // its first member must cover the whole class.
    let truth = lacc_graph::stats::ground_truth_labels(g);
    let mut rep_of_label: Vec<Option<Vid>> = vec![None; n];
    for v in 0..n {
        match rep_of_label[labels[v]] {
            None => rep_of_label[labels[v]] = Some(v),
            Some(rep) => {
                if truth[rep] != truth[v] {
                    return Err(LabelError::Merged { a: rep, b: v });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lacc_serial, LaccOpts};
    use lacc_graph::generators::{community_graph, path_graph};
    use lacc_graph::stats::ground_truth_labels;

    #[test]
    fn accepts_correct_labelings() {
        let g = community_graph(600, 30, 3.0, 1.4, 3);
        let run = lacc_serial(&g, &LaccOpts::default());
        assert_eq!(verify_labels(&g, &run.labels), Ok(()));
        assert_eq!(verify_labels(&g, &ground_truth_labels(&g)), Ok(()));
    }

    #[test]
    fn rejects_wrong_length_and_range() {
        let g = path_graph(5);
        assert!(matches!(
            verify_labels(&g, &[0, 0, 0]),
            Err(LabelError::WrongLength {
                expected: 5,
                got: 3
            })
        ));
        assert!(matches!(
            verify_labels(&g, &[0, 0, 0, 0, 9]),
            Err(LabelError::OutOfRange {
                vertex: 4,
                label: 9
            })
        ));
    }

    #[test]
    fn rejects_split_components() {
        let g = path_graph(4);
        // Splits the path in the middle.
        let err = verify_labels(&g, &[0, 0, 2, 2]).unwrap_err();
        assert!(matches!(err, LabelError::EdgeSplit { .. }));
    }

    #[test]
    fn rejects_merged_components() {
        // Two disjoint edges labeled identically.
        let g =
            lacc_graph::CsrGraph::from_edges(lacc_graph::EdgeList::from_pairs(4, [(0, 1), (2, 3)]));
        let err = verify_labels(&g, &[0, 0, 0, 0]).unwrap_err();
        assert!(matches!(err, LabelError::Merged { .. }));
    }
}
