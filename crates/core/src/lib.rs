//! `lacc` — Linear Algebraic Connected Components.
//!
//! The paper's primary contribution: the Awerbuch–Shiloach (AS) PRAM
//! connected-components algorithm expressed in GraphBLAS primitives, with
//! sparsity exploitation (Lemmas 1–2) and distributed-memory communication
//! optimizations. Three implementations share one algorithmic skeleton:
//!
//! * [`asref`] — a direct pointer-based AS reference (no linear algebra):
//!   the simplest trustworthy implementation, used as a test oracle.
//! * [`serial`] — LACC on [`gblas::serial`] (Algorithms 3–6 of the paper);
//!   the role of the LAGraph/SuiteSparse educational implementation.
//! * [`dist`] — LACC on [`gblas::dist`] over the [`dmsim`] simulated
//!   machine; the role of the CombBLAS production implementation whose
//!   scaling Figures 4–8 report.
//!
//! Every iteration performs (§III–IV):
//!
//! 1. **Conditional hooking** — each star vertex finds the minimum parent
//!    among its neighbors via `mxv` on the `(Select2nd, min)` semiring and
//!    hooks its root onto a strictly smaller parent.
//! 2. **Unconditional hooking** — remaining stars hook onto *nonstar*
//!    neighbors' parents regardless of id order (Lemma 2 guarantees this
//!    never creates a cycle).
//! 3. **Shortcutting** — active nonstar vertices replace their parent with
//!    their grandparent (pointer jumping).
//! 4. **Starcheck** — recompute star membership (Algorithm 6, executed
//!    after every forest mutation; its cost is reported under the
//!    "Starcheck" bucket of Figure 8).
//!
//! Sparsity (Table I): after unconditional hooking in iterations ≥ 2, any
//! tree that is still a star is a **converged component** (Lemma 1); its
//! vertices drop out of all subsequent steps, which is what makes LACC fast
//! on graphs with many components (Figure 7).

#![warn(missing_docs)]

pub mod asref;
pub mod dist;
pub mod engine;
pub mod narrow;
pub mod options;
pub mod serial;
pub mod stats;
pub mod verify;

pub use dist::{run, RunConfig, RunOutput};
#[allow(deprecated)]
pub use dist::{run_distributed, run_distributed_rerun, run_distributed_traced};
pub use dmsim::EngineKind;
pub use engine::{
    caps_for, choose_engine, engine_for, CcEngine, EngineCaps, EngineCtx, EngineIter, EngineRun,
    EngineSelect, FastsvEngine, LabelPropEngine, LaccEngine,
};
pub use narrow::NarrowPlanner;
pub use options::{IndexWidth, LaccOpts, LaccOptsBuilder, OptsError};
pub use serial::lacc_serial;
pub use stats::{IterStats, LaccRun, StepBreakdown};
pub use verify::{verify_labels, CcOracle, LabelError};

/// Vertex id type, shared with the rest of the workspace.
pub type Vid = lacc_graph::Vid;
