//! Dynamic label-range narrowing: the per-iteration probe and wire-tier
//! planner behind [`DistOpts::narrow_labels`].
//!
//! Every engine iteration already ends in a convergence allreduce; the
//! probe piggybacks two extra words on it — the maximum live label word
//! (max-merged) and the local distinct-label count (sum-merged, an upper
//! bound on the global survivor count) — so the range measurement costs
//! **no extra collective**. From the merged probe, [`NarrowPlanner::plan`]
//! picks the wire tier for the *next* iteration's exchanges:
//!
//! * every label word below [`DistOpts::narrow_u16_max`] → raw
//!   [`NarrowTier::U16`] (2 bytes per label, no setup);
//! * otherwise, a surviving-label count below
//!   [`DistOpts::narrow_dict_max`] → [`NarrowTier::Dict`]: a dense-rank
//!   dictionary of the surviving roots, built once by a zero-word framed
//!   allgather and reused across iterations until a shortcut step moves
//!   labels (the engine then invalidates it for tightness — the value
//!   set only ever shrinks, so a stale dictionary would still *decode*
//!   correctly, it just stops being dense);
//! * otherwise → [`NarrowTier::Native`] (the legacy codecs, byte-exact
//!   with the flag off).
//!
//! Correctness never depends on the probe: every narrow encoder keeps
//! the legacy stream as a candidate and checks per-stream that the tier
//! applies (u16 range, dictionary containment), so a stale probe can
//! only cost bytes, not bits. Decode always widens back to the index
//! type, so labels and iteration counts are bit-identical with the flag
//! on or off; the framed exchange layer additionally charges β at the
//! legacy word counts, so per-rank `words_sent` is identical too and
//! the entire win shows up in
//! [`dmsim::CostSnapshot::bytes_sent`] /
//! [`dmsim::CostSnapshot::narrow_saved_bytes`].

use dmsim::{Comm, FramedBlock, Group, NarrowSpec, NarrowTier, SpanKind, WireWord};
use gblas::dist::DistOpts;
use lacc_graph::Idx;

/// Per-run narrowing state: the knobs copied out of [`DistOpts`] plus
/// the probe/plan methods the engine loops call. The planner itself is
/// stateless across iterations — the installed dictionary lives on the
/// [`Comm`] (so the wire codecs can reach it) and the tier rides
/// `DistOpts::narrow` into the primitives.
#[derive(Clone, Copy, Debug)]
pub struct NarrowPlanner {
    enabled: bool,
    u16_max: u64,
    dict_max: u64,
}

impl NarrowPlanner {
    /// Captures the narrowing knobs for one engine run.
    pub fn new(opts: &DistOpts) -> Self {
        NarrowPlanner {
            enabled: opts.narrow_labels,
            u16_max: opts.narrow_u16_max,
            dict_max: opts.narrow_dict_max,
        }
    }

    /// Whether narrowing is on at all (`[0, 0]` probes and
    /// [`NarrowSpec::NATIVE`] plans otherwise).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The iteration-1 probe, free of charge: every engine starts from
    /// the identity labeling `f[v] = v`, so the global maximum is `n - 1`
    /// and the distinct count is `n` without looking at anything.
    pub fn seed_probe(&self, n: usize) -> [u64; 2] {
        if !self.enabled {
            return [0, 0];
        }
        [n.saturating_sub(1) as u64, n as u64]
    }

    /// This rank's probe contribution from its local label chunk:
    /// `[max label word, local distinct count]`. Merge element 0 by max
    /// and element 1 by sum (the sum over ranks is an upper bound on the
    /// global distinct count — conservative for the dictionary gate).
    pub fn local_probe<I: Idx + WireWord>(&self, comm: &mut Comm, labels: &[I]) -> [u64; 2] {
        if !self.enabled {
            return [0, 0];
        }
        let words = sorted_unique_words(labels);
        comm.charge_compute(labels.len() as u64 + 1);
        [words.last().copied().unwrap_or(0), words.len() as u64]
    }

    /// Picks the wire tier for the next iteration from the merged probe
    /// and maintains the dictionary lifetime: `invalidate_dict` (the
    /// global shortcut-moved-labels signal) drops the installed
    /// dictionary first, and entering the dictionary tier without one
    /// installed builds it from everyone's surviving labels via a
    /// zero-legacy-word framed allgather. Must be called symmetrically
    /// on every rank with the *merged* probe values (it may run a
    /// collective); records a step-level [`SpanKind::Narrow`] point span
    /// tagged with the selected tier.
    pub fn plan<I: Idx + WireWord>(
        &self,
        comm: &mut Comm,
        world: &Group,
        global_max: u64,
        global_distinct: u64,
        invalidate_dict: bool,
        labels: &[I],
    ) -> NarrowSpec {
        if !self.enabled {
            return NarrowSpec::NATIVE;
        }
        if invalidate_dict {
            comm.invalidate_narrow_dict();
        }
        let tier = if global_max < self.u16_max {
            NarrowTier::U16
        } else if comm.narrow_dict().is_some() {
            // A still-valid dictionary from an earlier iteration: labels
            // only ever collapse onto existing values, so containment
            // holds until the next invalidation.
            NarrowTier::Dict
        } else if global_distinct < self.dict_max {
            build_dict(comm, world, labels);
            NarrowTier::Dict
        } else {
            NarrowTier::Native
        };
        let span = comm.span_open(SpanKind::Narrow(tier));
        comm.span_close(span);
        NarrowSpec { tier }
    }
}

fn sorted_unique_words<I: Idx + WireWord>(labels: &[I]) -> Vec<u64> {
    let mut words: Vec<u64> = labels.iter().map(|l| l.to_word()).collect();
    words.sort_unstable();
    words.dedup();
    words
}

/// Builds and installs the dense-rank dictionary: every rank contributes
/// its sorted-unique local label words (delta-varint encoded — sorted
/// unique lists delta tightly), the ring allgather merges them, and the
/// identical merged set installs on every rank in the same superstep
/// (so the epochs agree; see [`Comm::install_narrow_dict`]).
///
/// The exchange is framed with `legacy_words: 0`: with narrowing off
/// this collective does not exist, so charging words for it would break
/// the words-identical contract. Its bytes are counted honestly in
/// `bytes_sent` — the dictionary build is amortized real traffic, and
/// the tier gate (`global_distinct < narrow_dict_max`) bounds it.
fn build_dict<I: Idx + WireWord>(comm: &mut Comm, world: &Group, labels: &[I]) {
    let words = sorted_unique_words(labels);
    comm.charge_compute(labels.len() as u64 + 1);
    let mut bytes = Vec::with_capacity(2 * words.len() + 8);
    dmsim::wire::push_varint(&mut bytes, words.len() as u64);
    let mut prev = 0u64;
    for (k, &w) in words.iter().enumerate() {
        dmsim::wire::push_varint(&mut bytes, if k == 0 { w } else { w - prev });
        prev = w;
    }
    let gathered = comm.allgatherv_framed(
        world,
        FramedBlock {
            legacy_words: 0,
            items: words.len() as u64,
            bytes,
        },
    );
    let mut all: Vec<u64> = Vec::new();
    for b in gathered {
        let mut pos = 0usize;
        let k = dmsim::wire::read_varint(&b, &mut pos) as usize;
        let mut cur = 0u64;
        for i in 0..k {
            let d = dmsim::wire::read_varint(&b, &mut pos);
            cur = if i == 0 { d } else { cur + d };
            all.push(cur);
        }
    }
    all.sort_unstable();
    all.dedup();
    comm.charge_compute(all.len() as u64 + 1);
    comm.install_narrow_dict(all);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::run_spmd;
    use gblas::dist::DistOpts;

    #[test]
    fn disabled_planner_always_plans_native() {
        let opts = DistOpts::naive();
        let planner = NarrowPlanner::new(&opts);
        assert!(!planner.enabled());
        assert_eq!(planner.seed_probe(100), [0, 0]);
        let specs = run_spmd(2, move |c| {
            let world = c.world();
            let labels: Vec<usize> = vec![1, 2, 3];
            let probe = planner.local_probe(c, &labels);
            assert_eq!(probe, [0, 0]);
            planner.plan(c, &world, 7, 3, false, &labels).tier
        })
        .unwrap();
        assert!(specs.iter().all(|&t| t == NarrowTier::Native));
    }

    #[test]
    fn tier_rule_prefers_u16_then_dict_then_native() {
        let opts = DistOpts {
            narrow_u16_max: 16,
            narrow_dict_max: 8,
            ..DistOpts::optimized()
        };
        let planner = NarrowPlanner::new(&opts);
        let tiers = run_spmd(2, move |c| {
            let world = c.world();
            let labels: Vec<usize> = vec![100, 200, 300];
            // Max below the u16 bound: raw u16, no dictionary needed.
            let a = planner.plan(c, &world, 15, 3, false, &labels).tier;
            assert!(c.narrow_dict().is_none());
            // Max too wide but few survivors: builds + installs the dict.
            let b = planner.plan(c, &world, 300, 3, false, &labels).tier;
            let dict = c.narrow_dict().expect("dictionary installed");
            assert_eq!(dict.len(), 3);
            // Reused while valid (no rebuild even at higher distinct).
            let b2 = planner.plan(c, &world, 300, 100, false, &labels).tier;
            // Shortcut invalidation + too many survivors: back to native.
            let d = planner.plan(c, &world, 300, 100, true, &labels).tier;
            assert!(c.narrow_dict().is_none());
            (a, b, b2, d)
        })
        .unwrap();
        for (a, b, b2, d) in tiers {
            assert_eq!(a, NarrowTier::U16);
            assert_eq!(b, NarrowTier::Dict);
            assert_eq!(b2, NarrowTier::Dict);
            assert_eq!(d, NarrowTier::Native);
        }
    }

    #[test]
    fn dict_build_charges_zero_words() {
        let opts = DistOpts {
            narrow_u16_max: 1,
            narrow_dict_max: 1 << 20,
            ..DistOpts::optimized()
        };
        let planner = NarrowPlanner::new(&opts);
        let snaps = run_spmd(4, move |c| {
            let world = c.world();
            let labels: Vec<usize> = (0..64).map(|k| (c.rank() * 64 + k) * 3).collect();
            let before = c.snapshot().words_sent;
            planner.plan(c, &world, u64::MAX - 1, 256, false, &labels);
            let dict = c.narrow_dict().expect("dictionary installed");
            (c.snapshot().words_sent - before, dict.len())
        })
        .unwrap();
        for (words, len) in snaps {
            assert_eq!(words, 0, "dictionary build must not charge words");
            assert_eq!(len, 256, "merged dictionary covers every rank's labels");
        }
    }
}
