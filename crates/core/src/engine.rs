//! The engine portfolio: pluggable distributed connected-components
//! algorithms behind one [`CcEngine`] trait.
//!
//! LACC is one point in a family of linear-algebraic CC algorithms. This
//! module makes the algorithm a runtime choice over a shared SPMD context
//! ([`EngineCtx`]: grid, vector layout, distributed matrix, [`LaccOpts`])
//! so every engine inherits the full optimized `gblas::dist` stack —
//! sender-side compaction, in-flight combining, tracing, narrow `Idx`
//! indices — for free:
//!
//! * [`LaccEngine`] — the paper's Awerbuch–Shiloach formulation with
//!   Lemma-1 converged-component retirement; fastest when the graph has
//!   many components to retire.
//! * [`FastsvEngine`] — FastSV (Zhang, Azad & Hu): stochastic hooking,
//!   aggressive hooking, and shortcutting on a grandparent vector; no
//!   star machinery, so fewer and cheaper supersteps per round on graphs
//!   dominated by one giant component.
//! * [`LabelPropEngine`] — one closed-neighborhood min per round;
//!   converges in O(diameter) rounds, unbeatable on low-diameter graphs.
//!
//! [`EngineSelect::Auto`] picks between them from a cheap pre-pass
//! ([`lacc_graph::stats::PrepassStats`]) computed *distributed* in one
//! allreduce: deterministic BFS seeds are split round-robin across ranks
//! and the partial eccentricity/reach maxima merge by max, so every rank
//! agrees on the choice without a coordinator.
//!
//! Engines converge to different (equally valid) representatives: LACC
//! labels are tree-root ids, FastSV and label propagation converge to
//! component *minima*. Cross-engine label comparisons must canonicalize
//! first (`lacc_graph::unionfind::canonicalize_labels`) — the engine
//! matrix tests do exactly that.

use crate::narrow::NarrowPlanner;
use crate::options::{LaccOpts, OptsError};
use crate::stats::StepBreakdown;
use crate::Vid;
use dmsim::{Comm, EngineKind, Grid2d, SpanKind, WireWord};
use gblas::dist::{
    dist_assign, dist_extract, dist_extract_planned, dist_mxv, dist_mxv_dense,
    dist_mxv_dense_start, dist_mxv_start, plan_requests, DistMask, DistMat, DistOpts, DistSpVec,
    DistVec, FusedExtract, NarrowVal, VecLayout,
};
use gblas::{AndBool, MinUsize};
use lacc_graph::stats::{bfs_eccentricity, degree_skew, prepass_seeds, PrepassStats};
use lacc_graph::{CsrGraph, Idx};

/// Which engine a run should use — the `--engine` CLI vocabulary.
///
/// The default is [`EngineSelect::Lacc`], preserving the bit-identity
/// guarantees every existing caller relies on; `Auto` defers the choice
/// to [`choose_engine`] over a sampled pre-pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineSelect {
    /// Always run LACC (Awerbuch–Shiloach with Lemma-1 retirement).
    #[default]
    Lacc,
    /// Always run FastSV.
    Fastsv,
    /// Always run min-label propagation.
    LabelProp,
    /// Pick from graph statistics (see [`choose_engine`]).
    Auto,
}

impl std::fmt::Display for EngineSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineSelect::Lacc => "lacc",
            EngineSelect::Fastsv => "fastsv",
            EngineSelect::LabelProp => "labelprop",
            EngineSelect::Auto => "auto",
        })
    }
}

impl std::str::FromStr for EngineSelect {
    type Err = OptsError;

    fn from_str(s: &str) -> Result<Self, OptsError> {
        match s {
            "lacc" => Ok(EngineSelect::Lacc),
            "fastsv" => Ok(EngineSelect::Fastsv),
            "labelprop" => Ok(EngineSelect::LabelProp),
            "auto" => Ok(EngineSelect::Auto),
            other => Err(OptsError::new(
                "engine",
                format!("{other:?} is not one of lacc, fastsv, labelprop, auto"),
            )),
        }
    }
}

/// Static properties of an engine, for dispatch decisions and docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineCaps {
    /// Retires converged components mid-run (Lemma 1), shrinking the
    /// active set — the win on many-component graphs.
    pub sparsifies_active_set: bool,
    /// Maintains star membership (Algorithm 6) — extra supersteps per
    /// iteration.
    pub uses_starcheck: bool,
    /// Labels converge to the component *minimum* id (LACC's tree roots
    /// are arbitrary representatives instead).
    pub monotone_min_labels: bool,
    /// Round count is bounded by the graph diameter rather than
    /// O(log n) — only acceptable on low-diameter graphs.
    pub rounds_bounded_by_diameter: bool,
}

/// Per-rank, per-iteration record produced inside an engine's SPMD body.
///
/// The four [`StepBreakdown`] buckets keep the Figure-8 reporting schema
/// across engines; non-LACC engines map their phases onto the closest
/// bucket (documented on each engine).
#[derive(Clone, Debug, Default)]
pub struct EngineIter {
    /// Vertices still active at iteration start (always `n` for engines
    /// without Lemma-1 retirement).
    pub active_before: usize,
    /// Cumulative vertices known converged after the iteration.
    pub converged_after: usize,
    /// Whether the main `mxv` took the dense (SpMV) path.
    pub spmv_dense: bool,
    /// Updates applied in the "conditional hooking" bucket.
    pub cond_changed: u64,
    /// Updates applied in the "unconditional hooking" bucket.
    pub uncond_changed: u64,
    /// Updates applied in the "shortcutting" bucket.
    pub shortcut_changed: u64,
    /// Modeled per-step seconds (thin view over trace spans).
    pub modeled: StepBreakdown,
    /// Extract requests this rank received during the iteration.
    pub extract_received: u64,
}

/// What one rank's engine run produced.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Full label vector, on rank 0 only (widened to [`Vid`]).
    pub labels: Option<Vec<Vid>>,
    /// Per-iteration records.
    pub iters: Vec<EngineIter>,
    /// The rank's final modeled clock.
    pub final_clock_s: f64,
}

/// The shared SPMD context every engine runs over: one rank's view of the
/// distributed matrix, the vector layout, and the run options. Built once
/// per rank by the unified [`crate::dist::run`] entry and handed to
/// whichever engine the dispatcher picked.
pub struct EngineCtx<'a, I: Idx> {
    /// The rank's communicator (cost model, collectives, trace spans).
    pub comm: &'a mut Comm,
    /// The (possibly permuted) input graph, replicated per rank.
    pub graph: &'a CsrGraph,
    /// Run options; engines read `dist`, `max_iters`, and their own knobs.
    pub opts: &'a LaccOpts,
    /// The 2D process grid.
    pub grid: Grid2d,
    /// Vector layout (blocked or cyclic per `opts.cyclic_vectors`).
    pub layout: VecLayout,
    /// This rank's id.
    pub rank: usize,
    /// This rank's block of the adjacency matrix.
    pub a: DistMat<I>,
}

impl<'a, I: Idx> EngineCtx<'a, I> {
    /// Builds the context for one rank: square grid, layout per options,
    /// and the rank's matrix block.
    pub fn new(comm: &'a mut Comm, graph: &'a CsrGraph, opts: &'a LaccOpts) -> Self {
        let p = comm.size();
        let grid = Grid2d::square(p);
        let n = graph.num_vertices();
        let layout = if opts.cyclic_vectors {
            VecLayout::cyclic(n, grid)
        } else {
            VecLayout::new(n, grid)
        };
        let rank = comm.rank();
        let a = DistMat::<I>::from_graph(graph, grid, rank);
        EngineCtx {
            comm,
            graph,
            opts,
            grid,
            layout,
            rank,
            a,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.graph.num_vertices()
    }
}

/// A distributed connected-components engine over the shared context.
///
/// Contract: `run` executes one rank's share of an SPMD program; all
/// ranks execute the same iteration count (engines agree via allreduce),
/// rank 0 returns the full widened label vector, and the labels induce
/// the true component partition (property-tested in
/// `tests/engine_matrix.rs` across engines × comm configs × layouts ×
/// index widths).
pub trait CcEngine<I: Idx + WireWord + NarrowVal> {
    /// Which engine this is (tags the run's trace span).
    fn kind(&self) -> EngineKind;

    /// Stable lowercase name (`lacc`, `fastsv`, `labelprop`).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Static capability flags.
    fn caps(&self) -> EngineCaps;

    /// One rank's share of the run.
    fn run(&self, ctx: &mut EngineCtx<'_, I>) -> EngineRun;
}

/// The engine implementation for a resolved [`EngineKind`].
pub fn engine_for<I: Idx + WireWord + NarrowVal>(kind: EngineKind) -> &'static dyn CcEngine<I> {
    match kind {
        EngineKind::Lacc => &LaccEngine,
        EngineKind::Fastsv => &FastsvEngine,
        EngineKind::LabelProp => &LabelPropEngine,
    }
}

/// Capability flags for a resolved [`EngineKind`] without monomorphizing
/// a trait object (the flags are width-independent).
pub fn caps_for(kind: EngineKind) -> EngineCaps {
    engine_for::<usize>(kind).caps()
}

// --------------------------------------------------------------------------
// Auto selection
// --------------------------------------------------------------------------

/// BFS seeds sampled by the `Auto` pre-pass.
pub const AUTO_SAMPLES: usize = 8;
/// Seed for the deterministic pre-pass sample.
pub const AUTO_SEED: u64 = 0x005E_EDCC;
/// Sampled diameter at or below which label propagation is considered.
pub const AUTO_LABELPROP_MAX_DIAMETER: usize = 8;
/// Sampled reach fraction above which one giant component is assumed to
/// dominate (few components → Lemma-1 retirement buys little).
pub const AUTO_GIANT_FRACTION: f64 = 0.45;

/// The `Auto` policy: maps pre-pass statistics to an engine, with a
/// human-readable rationale for reports and traces.
///
/// * Low sampled diameter **and** a dominant component → label
///   propagation (O(diameter) cheap rounds, no pointer forest at all).
/// * Dominant component but non-trivial diameter → FastSV (fewer,
///   cheaper supersteps than LACC; nothing to retire anyway).
/// * Otherwise (reach is fragmented → many components) → LACC, whose
///   Lemma-1 retirement shrinks the active set every iteration.
pub fn choose_engine(stats: &PrepassStats) -> (EngineKind, String) {
    if stats.diameter_estimate <= AUTO_LABELPROP_MAX_DIAMETER
        && stats.reached_fraction >= AUTO_GIANT_FRACTION
    {
        (
            EngineKind::LabelProp,
            format!(
                "sampled diameter {} <= {} with a dominant component ({:.0}% reached): \
                 label propagation converges in O(diameter) cheap rounds",
                stats.diameter_estimate,
                AUTO_LABELPROP_MAX_DIAMETER,
                stats.reached_fraction * 100.0
            ),
        )
    } else if stats.reached_fraction >= AUTO_GIANT_FRACTION {
        (
            EngineKind::Fastsv,
            format!(
                "one component dominates ({:.0}% reached, sampled diameter {}): \
                 FastSV's hooking beats star maintenance when there is little to retire",
                stats.reached_fraction * 100.0,
                stats.diameter_estimate
            ),
        )
    } else {
        (
            EngineKind::Lacc,
            format!(
                "sampled reach only {:.0}% (many components likely, degree skew {:.1}): \
                 LACC retires converged components via Lemma 1",
                stats.reached_fraction * 100.0,
                stats.degree_skew
            ),
        )
    }
}

/// The `Auto` pre-pass, computed distributed in **one** exchange: every
/// rank derives the same deterministic seed list, BFSes its round-robin
/// share, and a single max-allreduce merges the partial eccentricity and
/// reach maxima. Degree statistics are computed locally (the graph is
/// replicated, so they are identical on every rank and cost no
/// communication). The result is bit-identical to the serial
/// [`lacc_graph::stats::prepass_stats`] with the same `samples`/`seed`.
pub fn distributed_prepass(
    comm: &mut Comm,
    g: &CsrGraph,
    samples: usize,
    seed: u64,
) -> PrepassStats {
    let n = g.num_vertices();
    let p = comm.size();
    let rank = comm.rank();
    let seeds = prepass_seeds(n, samples, seed);
    let mut ecc = 0usize;
    let mut reached_max = 0usize;
    let avg_degree = g.average_degree();
    for (i, &s) in seeds.iter().enumerate() {
        if i % p != rank {
            continue;
        }
        let (e, r) = bfs_eccentricity(g, s);
        ecc = ecc.max(e);
        reached_max = reached_max.max(r);
        comm.charge_compute((r as f64 * (1.0 + avg_degree)) as u64 + 1);
    }
    let world = comm.world();
    let merged = comm.allreduce(&world, [ecc as u64, reached_max as u64], |a, b| {
        [a[0].max(b[0]), a[1].max(b[1])]
    });
    let skew = degree_skew(g);
    comm.charge_compute(n as u64 + 1);
    PrepassStats {
        samples: seeds.len(),
        diameter_estimate: merged[0] as usize,
        reached_fraction: if n == 0 {
            1.0
        } else {
            merged[1] as f64 / n as f64
        },
        degree_skew: skew,
        avg_degree,
    }
}

/// Resolves an [`EngineSelect`] to a concrete engine inside the SPMD
/// body. `Auto` runs the distributed pre-pass under an `engine_select`
/// trace span and returns the selection rationale; fixed choices are
/// free. All ranks resolve identically (the pre-pass is deterministic
/// and max-merged), so no rank ever disagrees on the engine.
pub fn resolve_engine(
    comm: &mut Comm,
    g: &CsrGraph,
    select: EngineSelect,
) -> (EngineKind, Option<String>) {
    match select {
        EngineSelect::Lacc => (EngineKind::Lacc, None),
        EngineSelect::Fastsv => (EngineKind::Fastsv, None),
        EngineSelect::LabelProp => (EngineKind::LabelProp, None),
        EngineSelect::Auto => {
            let span = comm.span_open(SpanKind::EngineSelect);
            let stats = distributed_prepass(comm, g, AUTO_SAMPLES, AUTO_SEED);
            comm.span_close(span);
            let (kind, why) = choose_engine(&stats);
            (kind, Some(why))
        }
    }
}

// --------------------------------------------------------------------------
// LACC
// --------------------------------------------------------------------------

/// The paper's engine: Awerbuch–Shiloach in GraphBLAS with sparsity
/// exploitation (Lemmas 1–2) — conditional hooking fused with the
/// convergence detector, unconditional hooking, shortcutting, and star
/// maintenance after every forest mutation.
pub struct LaccEngine;

/// Star recomputation (Algorithm 6) over distributed vectors.
///
/// Returns the number of extract requests this rank received (Figure 3).
fn starcheck_dist<I: Idx + WireWord + NarrowVal>(
    comm: &mut Comm,
    f: &DistVec<I>,
    star: &mut DistVec<bool>,
    active: &[bool],
    dist_opts: &DistOpts,
) -> u64 {
    // The active scan, star reset and request build produce the
    // grandparent extract's inputs elementwise, so the first exchange is
    // window-credited for streaming behind them (see `DistOpts::overlap`).
    let win = comm.overlap_window();
    let local_active: Vec<usize> = (0..active.len()).filter(|&o| active[o]).collect();
    for &o in &local_active {
        star.local_mut()[o] = true;
    }
    comm.charge_compute(local_active.len() as u64 + 1);
    // Grandparents of active vertices: gf[v] = f[f[v]]. Both extracts
    // below use the identical request list over same-layout vectors, so
    // the owner bucketing (and dedup) is planned once and reused.
    let reqs: Vec<I> = local_active.iter().map(|&o| f.local()[o]).collect();
    let plan = plan_requests(comm, f.layout(), &reqs, dist_opts);
    if dist_opts.combine_in_flight && dist_opts.fuse_starcheck {
        // Fused: one combining request exchange serves both reply phases
        // (the route is replayed). The parent-star phase reads `star`
        // *after* the demote assign, exactly as the unfused pair does.
        let (fx, gfs) = comm.overlap_from(win, dist_opts.overlap, |c| {
            let fx = FusedExtract::begin_narrow(c, &plan, dist_opts.narrow);
            let gfs = fx.extract(c, f, &plan, dist_opts);
            (fx, gfs)
        });
        let mut demote: Vec<(I, bool)> = Vec::new();
        for (&o, &gf) in local_active.iter().zip(&gfs) {
            if f.local()[o] != gf {
                star.local_mut()[o] = false;
                demote.push((gf, false));
            }
        }
        comm.charge_compute(local_active.len() as u64 + 1);
        dist_assign(comm, star, &demote, AndBool, dist_opts);
        let parent_star = fx.extract(comm, star, &plan, dist_opts);
        for (&o, &ps) in local_active.iter().zip(&parent_star) {
            star.local_mut()[o] = star.local_mut()[o] && ps;
        }
        comm.charge_compute(local_active.len() as u64 + 1);
        // Requests arrive once on this path; count them once.
        return fx.received();
    }
    let (gfs, st1) = comm.overlap_from(win, dist_opts.overlap, |c| {
        dist_extract_planned(c, f, &plan, dist_opts)
    });
    let mut demote: Vec<(I, bool)> = Vec::new();
    for (&o, &gf) in local_active.iter().zip(&gfs) {
        if f.local()[o] != gf {
            star.local_mut()[o] = false;
            demote.push((gf, false));
        }
    }
    comm.charge_compute(local_active.len() as u64 + 1);
    dist_assign(comm, star, &demote, AndBool, dist_opts);
    // star[v] ← star[v] ∧ star[f[v]].
    let (parent_star, st2) = dist_extract_planned(comm, star, &plan, dist_opts);
    for (&o, &ps) in local_active.iter().zip(&parent_star) {
        star.local_mut()[o] = star.local_mut()[o] && ps;
    }
    comm.charge_compute(local_active.len() as u64 + 1);
    st1.received_requests + st2.received_requests
}

impl<I: Idx + WireWord + NarrowVal> CcEngine<I> for LaccEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Lacc
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            sparsifies_active_set: true,
            uses_starcheck: true,
            monotone_min_labels: false,
            rounds_bounded_by_diameter: false,
        }
    }

    fn run(&self, ctx: &mut EngineCtx<'_, I>) -> EngineRun {
        let n = ctx.n();
        let opts = ctx.opts;
        let layout = ctx.layout;
        let rank = ctx.rank;
        let mut f: DistVec<I> = DistVec::from_fn(layout, rank, I::from_usize);
        let mut star: DistVec<bool> = DistVec::from_fn(layout, rank, |_| true);
        let chunk_len = f.local().len();
        let mut active = vec![true; chunk_len];
        let mut active_count_global = n;
        let world = ctx.comm.world();
        let mut iters: Vec<EngineIter> = Vec::new();
        // Star staleness bookkeeping, mirroring `crate::serial`: a
        // zero-change iteration proves a fixpoint only if the previous
        // shortcut changed nothing (the star vector was fresh).
        let mut prev_shortcut_changed = 0u64;
        // Label-range narrowing: `dopts.narrow` carries the wire tier the
        // planner picked for the upcoming iteration's exchanges. Iteration
        // 1 is seeded for free from the identity labeling; later
        // iterations re-plan from the probe piggybacked on the
        // convergence allreduce.
        let planner = NarrowPlanner::new(&opts.dist);
        let mut dopts = opts.dist;
        let seed = planner.seed_probe(n);
        dopts.narrow = planner.plan(ctx.comm, &world, seed[0], seed[1], false, f.local());

        for _iteration in 1..=opts.max_iters {
            let mut rec = EngineIter {
                active_before: active_count_global,
                ..Default::default()
            };
            // --- Step 1: conditional hooking, fused with the convergence
            // detector (one (min, max)-monoid mxv; see `crate::serial`) ---
            // Each step opens a trace span; the close returns the modeled
            // duration, so StepBreakdown is a thin view over span timings.
            let span = ctx.comm.span_open(SpanKind::CondHook);
            let mask_vec: DistVec<bool> = {
                let mut m = star.clone();
                for (o, ml) in m.local_mut().iter_mut().enumerate() {
                    *ml = *ml && active[o];
                }
                m
            };
            let density = if n == 0 {
                0.0
            } else {
                active_count_global as f64 / n as f64
            };
            let use_dense = density >= opts.dense_threshold;
            rec.spmv_dense = use_dense;
            // The hooking mxv is *posted* (non-blocking): it runs now with
            // identical messages and charges, and the handle refunds its
            // hideable exchange time against the Lemma-1 candidate scan and
            // request planning below, which read only start-of-iteration
            // state and so genuinely overlap the exchange.
            let qh = if use_dense {
                let pairs: DistVec<(I, I)> =
                    DistVec::from_fn(layout, rank, |g| (f.get_local(g), f.get_local(g)));
                dist_mxv_dense_start(
                    ctx.comm,
                    &ctx.a,
                    &pairs,
                    DistMask::Keep(&mask_vec),
                    gblas::MinMaxUsize,
                    &dopts,
                )
            } else {
                let entries: Vec<(I, (I, I))> = active
                    .iter()
                    .enumerate()
                    .filter(|&(_, &act)| act)
                    .map(|(o, _)| (I::from_usize(f.global_of(o)), (f.local()[o], f.local()[o])))
                    .collect();
                let x = DistSpVec::from_local_entries(layout, rank, entries);
                // Adaptive dispatch (§V-A): even when the active fraction is
                // below `dense_threshold`, the measured fill decides whether
                // the local multiply runs SpMV- or SpMSpV-style.
                dist_mxv_start(
                    ctx.comm,
                    &ctx.a,
                    &x,
                    DistMask::Keep(&mask_vec),
                    gblas::MinMaxUsize,
                    &dopts,
                )
            };
            // Lemma-1 candidates (active stars) and their extract plan
            // depend only on `active`/`star`/`f` as of iteration start —
            // computed while the posted mxv is in flight.
            let lemma1 = opts.use_sparsity.then(|| {
                let candidates: Vec<usize> = (0..chunk_len)
                    .filter(|&o| active[o] && star.local()[o])
                    .collect();
                let reqs: Vec<I> = candidates.iter().map(|&o| f.local()[o]).collect();
                ctx.comm.charge_compute(chunk_len as u64 + 1);
                let plan = plan_requests(ctx.comm, layout, &reqs, &dopts);
                (candidates, plan)
            });
            let q: DistSpVec<(I, I), I> = qh.wait(ctx.comm);

            // Converged-component tracking (Lemma 1, strengthened;
            // evaluated on the start-of-iteration state, same rule as
            // `crate::serial`).
            let mut newly_converged = 0u64;
            if let Some((candidates, plan)) = &lemma1 {
                let mut root_quiet: DistVec<bool> = DistVec::from_fn(layout, rank, |_| true);
                let demote: Vec<(I, bool)> = q
                    .entries()
                    .iter()
                    .filter(|&&(v, (lo, hi))| {
                        let fv = f.get_local(v.idx());
                        !(lo == fv && hi == fv)
                    })
                    .map(|&(v, _)| (f.get_local(v.idx()), false))
                    .collect();
                dist_assign(ctx.comm, &mut root_quiet, &demote, AndBool, &dopts);
                let (flags, st) = dist_extract_planned(ctx.comm, &root_quiet, plan, &dopts);
                rec.extract_received += st.received_requests;
                for (&o, &quiet) in candidates.iter().zip(&flags) {
                    if quiet {
                        active[o] = false;
                        newly_converged += 1;
                    }
                }
                ctx.comm.charge_compute(chunk_len as u64 + 1);
            }

            // Conditional hooks from the fused sweep (skip just-deactivated
            // vertices; their hooks are no-ops).
            let updates: Vec<(I, I)> = q
                .entries()
                .iter()
                .filter(|&&(v, _)| active[layout.offset_of(rank, v.idx())])
                .map(|&(v, (lo, _))| {
                    let fv = f.get_local(v.idx());
                    (fv, lo.min(fv))
                })
                .collect();
            rec.cond_changed = dist_assign(ctx.comm, &mut f, &updates, MinUsize, &dopts).0 as u64;
            rec.modeled.cond_s += ctx.comm.span_close(span);

            let span = ctx.comm.span_open(SpanKind::Starcheck);
            rec.extract_received += starcheck_dist(ctx.comm, &f, &mut star, &active, &dopts);
            rec.modeled.starcheck_s += ctx.comm.span_close(span);

            // --- Step 2: unconditional hooking ---
            let span = ctx.comm.span_open(SpanKind::UncondHook);
            // The mxv input and mask are produced elementwise, so a real
            // implementation streams the gather sends while this loop runs;
            // the window credits the exchange for that pipelining.
            let win = ctx.comm.overlap_window();
            let entries: Vec<(I, I)> = active
                .iter()
                .enumerate()
                .filter(|&(o, &act)| act && !star.local()[o])
                .map(|(o, _)| (I::from_usize(f.global_of(o)), f.local()[o]))
                .collect();
            let x = DistSpVec::from_local_entries(layout, rank, entries);
            let mask_vec2: DistVec<bool> = {
                let mut m = star.clone();
                for (o, ml) in m.local_mut().iter_mut().enumerate() {
                    *ml = *ml && active[o];
                }
                m
            };
            ctx.comm.charge_compute(2 * chunk_len as u64 + 1);
            let fn2 = ctx.comm.overlap_from(win, dopts.overlap, |c| {
                dist_mxv(c, &ctx.a, &x, DistMask::Keep(&mask_vec2), MinUsize, &dopts)
            });
            let updates2: Vec<(I, I)> = fn2
                .entries()
                .iter()
                .map(|&(v, m)| (f.get_local(v.idx()), m))
                .collect();
            rec.uncond_changed =
                dist_assign(ctx.comm, &mut f, &updates2, MinUsize, &dopts).0 as u64;
            rec.modeled.uncond_s += ctx.comm.span_close(span);

            let span = ctx.comm.span_open(SpanKind::Starcheck);
            rec.extract_received += starcheck_dist(ctx.comm, &f, &mut star, &active, &dopts);
            rec.modeled.starcheck_s += ctx.comm.span_close(span);

            // --- Step 3: shortcutting (active nonstars) ---
            let span = ctx.comm.span_open(SpanKind::Shortcut);
            // The target scan produces the extract's requests elementwise —
            // window-credited streaming, as in step 2.
            let win = ctx.comm.overlap_window();
            let targets: Vec<usize> = (0..chunk_len)
                .filter(|&o| active[o] && !star.local()[o])
                .collect();
            let reqs: Vec<I> = targets.iter().map(|&o| f.local()[o]).collect();
            ctx.comm.charge_compute(chunk_len as u64 + 1);
            let (gfs, st) = ctx
                .comm
                .overlap_from(win, dopts.overlap, |c| dist_extract(c, &f, &reqs, &dopts));
            rec.extract_received += st.received_requests;
            for (&o, &gf) in targets.iter().zip(&gfs) {
                if f.local()[o] != gf {
                    f.local_mut()[o] = gf;
                    rec.shortcut_changed += 1;
                }
            }
            ctx.comm.charge_compute(targets.len() as u64 + 1);
            rec.modeled.shortcut_s += ctx.comm.span_close(span);

            // --- Global convergence test, with the narrowing probe
            // piggybacked (elements 4–5: max label word max-merged, local
            // distinct count summed). The payload is six words whether
            // narrowing is on or off, so `words_sent` cannot depend on the
            // flag; the probe compute is charged only when enabled.
            let probe = planner.local_probe(ctx.comm, f.local());
            let local = [
                rec.cond_changed,
                rec.uncond_changed,
                rec.shortcut_changed,
                newly_converged,
                probe[0],
                probe[1],
            ];
            let global = ctx.comm.allreduce(&world, local, |a, b| {
                [
                    a[0] + b[0],
                    a[1] + b[1],
                    a[2] + b[2],
                    a[3] + b[3],
                    a[4].max(b[4]),
                    a[5] + b[5],
                ]
            });
            rec.cond_changed = global[0];
            rec.uncond_changed = global[1];
            rec.shortcut_changed = global[2];
            active_count_global -= global[3] as usize;
            rec.converged_after = n - active_count_global;
            // Fixpoint only counts with a fresh star vector (see the serial
            // implementation's staleness note).
            let done = global[0] + global[1] + global[2] == 0 && prev_shortcut_changed == 0;
            prev_shortcut_changed = global[2];
            iters.push(rec);
            if done {
                break;
            }
            // Plan the next iteration's wire tier; a shortcut that moved
            // labels invalidates the dictionary (stale dense ranks still
            // decode, they just stop being tight).
            dopts.narrow = planner.plan(
                ctx.comm,
                &world,
                global[4],
                global[5],
                global[2] > 0,
                f.local(),
            );
        }

        // Widen back to `Vid` at the boundary: callers always see
        // full-width labels regardless of the in-run storage width.
        let labels: Vec<Vid> = f.to_global(ctx.comm).into_iter().map(|l| l.idx()).collect();
        EngineRun {
            labels: (rank == 0).then_some(labels),
            iters,
            final_clock_s: ctx.comm.clock_s(),
        }
    }
}

// --------------------------------------------------------------------------
// FastSV
// --------------------------------------------------------------------------

/// FastSV (Zhang, Azad & Hu) as a first-class engine over the optimized
/// `gblas::dist` primitives: the min-semiring `mxv` computes each
/// vertex's minimum neighbor-grandparent, stochastic hooks route through
/// the combining `dist_assign`, and the grandparent refresh is a planned
/// extract (dedup + in-flight combining apply). Labels converge to
/// component minima.
///
/// Step-bucket mapping (Figure-8 schema reinterpreted): `cond` = the
/// `mxv` + stochastic hooking, `uncond` = aggressive hooking, `shortcut`
/// = shortcutting, `starcheck` = grandparent maintenance (the structural
/// analogue of LACC's star upkeep — the state that must be refreshed
/// after the forest mutates).
pub struct FastsvEngine;

impl<I: Idx + WireWord + NarrowVal> CcEngine<I> for FastsvEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Fastsv
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            sparsifies_active_set: false,
            uses_starcheck: false,
            monotone_min_labels: true,
            rounds_bounded_by_diameter: false,
        }
    }

    fn run(&self, ctx: &mut EngineCtx<'_, I>) -> EngineRun {
        let n = ctx.n();
        let opts = ctx.opts;
        let layout = ctx.layout;
        let rank = ctx.rank;
        let mut f: DistVec<I> = DistVec::from_fn(layout, rank, I::from_usize);
        let mut gf: DistVec<I> = DistVec::from_fn(layout, rank, I::from_usize);
        let nlocal = f.local().len();
        let world = ctx.comm.world();
        let max_rounds = 8 * (usize::BITS - n.leading_zeros()) as usize + 32;
        let mut iters: Vec<EngineIter> = Vec::new();
        // Narrowing plan for the upcoming round, seeded from the identity
        // labeling and refreshed off the convergence allreduce (see the
        // LACC engine). `gf` values are always current-or-earlier `f`
        // values, so one f-probe covers both exchanged vectors.
        let planner = NarrowPlanner::new(&opts.dist);
        let mut dopts = opts.dist;
        let seed = planner.seed_probe(n);
        dopts.narrow = planner.plan(ctx.comm, &world, seed[0], seed[1], false, f.local());
        loop {
            assert!(iters.len() < max_rounds, "FastSV did not converge");
            let mut rec = EngineIter {
                active_before: n,
                spmv_dense: true,
                ..Default::default()
            };

            // fn[u] = min over neighbors v of gf[v], then stochastic
            // hooking f[f[u]] ← min(f[f[u]], fn[u]).
            let span = ctx.comm.span_open(SpanKind::CondHook);
            let fn_vec: DistSpVec<I, I> =
                dist_mxv_dense(ctx.comm, &ctx.a, &gf, DistMask::None, MinUsize, &dopts);
            let hooks: Vec<(I, I)> = fn_vec
                .entries()
                .iter()
                .map(|&(u, m)| {
                    let fu = f.get_local(u.idx());
                    (fu, m.min(fu))
                })
                .collect();
            rec.cond_changed = dist_assign(ctx.comm, &mut f, &hooks, MinUsize, &dopts).0 as u64;
            rec.modeled.cond_s += ctx.comm.span_close(span);

            // The grandparent-refresh exchange below pipelines behind the
            // aggressive-hooking and shortcutting loops: both are
            // elementwise over f, so a real implementation streams the
            // refresh requests for early elements while later elements
            // still compute. The window measures that compute and credits
            // the exchange for it (when `DistOpts::overlap` is on).
            let win = ctx.comm.overlap_window();

            // Aggressive hooking: f[u] ← min(f[u], fn[u]) (local).
            let span = ctx.comm.span_open(SpanKind::UncondHook);
            for &(u, m) in fn_vec.entries() {
                if m < f.get_local(u.idx()) {
                    f.set_local(u.idx(), m);
                    rec.uncond_changed += 1;
                }
            }
            ctx.comm.charge_compute(fn_vec.local_nvals() as u64 + 1);
            rec.modeled.uncond_s += ctx.comm.span_close(span);

            // Shortcutting: f[u] ← min(f[u], gf[u]) (local).
            let span = ctx.comm.span_open(SpanKind::Shortcut);
            for o in 0..nlocal {
                if gf.local()[o] < f.local()[o] {
                    f.local_mut()[o] = gf.local()[o];
                    rec.shortcut_changed += 1;
                }
            }
            ctx.comm.charge_compute(nlocal as u64 + 1);
            rec.modeled.shortcut_s += ctx.comm.span_close(span);

            // Grandparent maintenance: gf[u] ← f[f[u]] via a planned
            // extract (requests dedup + combine like every other gather).
            let span = ctx.comm.span_open(SpanKind::Starcheck);
            let reqs: Vec<I> = f.local().to_vec();
            let plan = plan_requests(ctx.comm, f.layout(), &reqs, &dopts);
            let (new_gf, st) = ctx.comm.overlap_from(win, dopts.overlap, |c| {
                dist_extract_planned(c, &f, &plan, &dopts)
            });
            rec.extract_received += st.received_requests;
            let mut gf_changed = 0u64;
            for (o, &val) in new_gf.iter().enumerate() {
                if gf.local()[o] != val {
                    gf.local_mut()[o] = val;
                    gf_changed += 1;
                }
            }
            ctx.comm.charge_compute(nlocal as u64 + 1);
            rec.modeled.starcheck_s += ctx.comm.span_close(span);

            // Converged when a full round (hooks + shortcut + grandparent
            // refresh) changed nothing anywhere. Elements 4–5 piggyback
            // the narrowing probe (max-merged word, summed distinct
            // count); the payload is six words with narrowing on or off.
            let probe = planner.local_probe(ctx.comm, f.local());
            let local = [
                rec.cond_changed,
                rec.uncond_changed,
                rec.shortcut_changed,
                gf_changed,
                probe[0],
                probe[1],
            ];
            let global = ctx.comm.allreduce(&world, local, |a, b| {
                [
                    a[0] + b[0],
                    a[1] + b[1],
                    a[2] + b[2],
                    a[3] + b[3],
                    a[4].max(b[4]),
                    a[5] + b[5],
                ]
            });
            rec.cond_changed = global[0];
            rec.uncond_changed = global[1];
            rec.shortcut_changed = global[2];
            let done = global[..4].iter().sum::<u64>() == 0;
            rec.converged_after = if done { n } else { 0 };
            iters.push(rec);
            if done {
                break;
            }
            dopts.narrow = planner.plan(
                ctx.comm,
                &world,
                global[4],
                global[5],
                global[2] > 0,
                f.local(),
            );
        }
        let labels: Vec<Vid> = f.to_global(ctx.comm).into_iter().map(|l| l.idx()).collect();
        EngineRun {
            labels: (rank == 0).then_some(labels),
            iters,
            final_clock_s: ctx.comm.clock_s(),
        }
    }
}

// --------------------------------------------------------------------------
// Label propagation
// --------------------------------------------------------------------------

/// Min-label propagation (the Liu–Tarjan "simple concurrent labeling"
/// family): every round, each vertex takes the minimum label in its
/// closed neighborhood via one min-semiring `mxv`. Converges in
/// eccentricity-of-the-minimum rounds — O(diameter) — with no pointer
/// forest, no hooks, and exactly one exchange per round, which makes it
/// the cheapest engine on low-diameter graphs and hopeless on paths.
///
/// All work lands in the `cond` step bucket (one phase per round).
pub struct LabelPropEngine;

impl<I: Idx + WireWord + NarrowVal> CcEngine<I> for LabelPropEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::LabelProp
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            sparsifies_active_set: false,
            uses_starcheck: false,
            monotone_min_labels: true,
            rounds_bounded_by_diameter: true,
        }
    }

    fn run(&self, ctx: &mut EngineCtx<'_, I>) -> EngineRun {
        let n = ctx.n();
        let opts = ctx.opts;
        let layout = ctx.layout;
        let rank = ctx.rank;
        let mut f: DistVec<I> = DistVec::from_fn(layout, rank, I::from_usize);
        let world = ctx.comm.world();
        let mut iters: Vec<EngineIter> = Vec::new();
        // Narrowing plan for the upcoming round (seed free from identity
        // labels, refreshed off the scalar convergence allreduce widened
        // to three words — on and off alike, so words stay identical).
        let planner = NarrowPlanner::new(&opts.dist);
        let mut dopts = opts.dist;
        let seed = planner.seed_probe(n);
        dopts.narrow = planner.plan(ctx.comm, &world, seed[0], seed[1], false, f.local());
        loop {
            // The true bound is the diameter (< n); `max_iters` is a
            // safety knob for LACC's O(log n) trajectory and would be a
            // silent wrong-answer cap here, so it is deliberately ignored.
            assert!(iters.len() < n + 2, "label propagation did not converge");
            let mut rec = EngineIter {
                active_before: n,
                spmv_dense: true,
                ..Default::default()
            };
            let span = ctx.comm.span_open(SpanKind::CondHook);
            let fn_vec: DistSpVec<I, I> =
                dist_mxv_dense(ctx.comm, &ctx.a, &f, DistMask::None, MinUsize, &dopts);
            let mut changed = 0u64;
            for &(u, m) in fn_vec.entries() {
                if m < f.get_local(u.idx()) {
                    f.set_local(u.idx(), m);
                    changed += 1;
                }
            }
            ctx.comm.charge_compute(fn_vec.local_nvals() as u64 + 1);
            rec.modeled.cond_s += ctx.comm.span_close(span);
            let probe = planner.local_probe(ctx.comm, f.local());
            let merged = ctx
                .comm
                .allreduce(&world, [changed, probe[0], probe[1]], |a, b| {
                    [a[0] + b[0], a[1].max(b[1]), a[2] + b[2]]
                });
            let total = merged[0];
            rec.cond_changed = total;
            let done = total == 0;
            rec.converged_after = if done { n } else { 0 };
            iters.push(rec);
            if done {
                break;
            }
            // Any label movement invalidates the dictionary for tightness
            // (the new minima are still contained, so a stale dictionary
            // would decode fine — it just stops being dense-ranked).
            dopts.narrow =
                planner.plan(ctx.comm, &world, merged[1], merged[2], total > 0, f.local());
        }
        let labels: Vec<Vid> = f.to_global(ctx.comm).into_iter().map(|l| l.idx()).collect();
        EngineRun {
            labels: (rank == 0).then_some(labels),
            iters,
            final_clock_s: ctx.comm.clock_s(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_parses_and_displays() {
        for (s, e) in [
            ("lacc", EngineSelect::Lacc),
            ("fastsv", EngineSelect::Fastsv),
            ("labelprop", EngineSelect::LabelProp),
            ("auto", EngineSelect::Auto),
        ] {
            assert_eq!(s.parse::<EngineSelect>().unwrap(), e);
            assert_eq!(e.to_string(), s);
        }
        let err = "dijkstra".parse::<EngineSelect>().unwrap_err();
        assert_eq!(err.field(), "engine");
        assert_eq!(EngineSelect::default(), EngineSelect::Lacc);
    }

    #[test]
    fn caps_distinguish_engines() {
        let lacc = caps_for(EngineKind::Lacc);
        assert!(lacc.sparsifies_active_set && lacc.uses_starcheck);
        assert!(!lacc.monotone_min_labels);
        let fastsv = caps_for(EngineKind::Fastsv);
        assert!(!fastsv.uses_starcheck && fastsv.monotone_min_labels);
        assert!(!fastsv.rounds_bounded_by_diameter);
        let lp = caps_for(EngineKind::LabelProp);
        assert!(lp.rounds_bounded_by_diameter && lp.monotone_min_labels);
        // Names round-trip through the trait objects.
        assert_eq!(engine_for::<usize>(EngineKind::Lacc).name(), "lacc");
        assert_eq!(engine_for::<u32>(EngineKind::Fastsv).name(), "fastsv");
        assert_eq!(
            engine_for::<usize>(EngineKind::LabelProp).name(),
            "labelprop"
        );
    }

    #[test]
    fn choose_engine_covers_the_space() {
        // Low diameter + giant component → label propagation.
        let lp = PrepassStats {
            samples: 8,
            diameter_estimate: 4,
            reached_fraction: 0.9,
            degree_skew: 20.0,
            avg_degree: 16.0,
        };
        let (kind, why) = choose_engine(&lp);
        assert_eq!(kind, EngineKind::LabelProp);
        assert!(why.contains("diameter"));
        // Giant component but deep → FastSV.
        let sv = PrepassStats {
            diameter_estimate: 200,
            ..lp
        };
        let (kind, why) = choose_engine(&sv);
        assert_eq!(kind, EngineKind::Fastsv);
        assert!(why.contains("dominates"));
        // Fragmented reach → LACC.
        let frag = PrepassStats {
            diameter_estimate: 3,
            reached_fraction: 0.02,
            ..lp
        };
        let (kind, why) = choose_engine(&frag);
        assert_eq!(kind, EngineKind::Lacc);
        assert!(why.contains("Lemma 1"));
    }

    #[test]
    fn choose_engine_is_total_over_arbitrary_stats() {
        // Any stats map to one of the three engines with a rationale.
        for d in [0usize, 1, 8, 9, 100, usize::MAX / 2] {
            for r in [0.0, 0.1, 0.449, 0.45, 0.9, 1.0] {
                for skew in [0.0, 1.0, 1e6] {
                    let s = PrepassStats {
                        samples: 8,
                        diameter_estimate: d,
                        reached_fraction: r,
                        degree_skew: skew,
                        avg_degree: 1.0,
                    };
                    let (kind, why) = choose_engine(&s);
                    assert!(matches!(
                        kind,
                        EngineKind::Lacc | EngineKind::Fastsv | EngineKind::LabelProp
                    ));
                    assert!(!why.is_empty());
                }
            }
        }
    }
}
