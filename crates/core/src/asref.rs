//! Direct (non-algebraic) Awerbuch–Shiloach reference.
//!
//! Algorithm 1 of the paper, executed with honest PRAM two-phase semantics:
//! every parallel step first gathers all its reads, then applies all its
//! writes, with concurrent writes to one location resolved by `min` (a
//! deterministic refinement of the CRCW arbitrary-winner rule). This is
//! the oracle the linear-algebraic implementations are tested against —
//! and it is itself tested against union-find.
//!
//! One correction to the paper's Algorithm 2 as literally printed: the
//! final star propagation (`star[v] ← star[f[v]]`) must not *resurrect* a
//! vertex already excluded — a level-3 vertex reads its level-2 parent,
//! which is still marked `true` at that point. We apply the propagation as
//! `star[v] ← star[v] ∧ star[f[v]]`, which is what the CombBLAS/LAGraph
//! implementations' masked assigns compute.

use crate::Vid;
use lacc_graph::CsrGraph;

/// Recomputes star membership for the forest `f` (Algorithm 2, with the
/// conjunction fix described in the module docs).
pub fn starcheck(f: &[Vid], star: &mut [bool]) {
    let n = f.len();
    for s in star.iter_mut() {
        *s = true;
    }
    // Exclude every vertex with level > 2 and its grandparent.
    for v in 0..n {
        let gf = f[f[v]];
        if f[v] != gf {
            star[v] = false;
            star[gf] = false;
        }
    }
    // In nonstar trees, exclude vertices at level 2 (conjunction with the
    // parent's flag, two-phase).
    let snapshot = star.to_vec();
    for v in 0..n {
        star[v] = star[v] && snapshot[f[v]];
    }
}

/// Applies a batch of `(target, value)` parent updates with `min`
/// resolution of concurrent writes. Returns how many parents changed.
fn apply_hooks(f: &mut [Vid], hooks: &[(Vid, Vid)]) -> usize {
    // Combine duplicates by min, then overwrite.
    let mut combined: std::collections::HashMap<Vid, Vid> = std::collections::HashMap::new();
    for &(t, v) in hooks {
        combined
            .entry(t)
            .and_modify(|x| *x = (*x).min(v))
            .or_insert(v);
    }
    let mut changed = 0;
    for (t, v) in combined {
        if f[t] != v {
            f[t] = v;
            changed += 1;
        }
    }
    changed
}

/// Runs the Awerbuch–Shiloach algorithm; returns the parent vector (every
/// vertex points at its component's root).
///
/// # Panics
/// If convergence takes more than `4·log₂ n + 16` iterations (a bug —
/// AS converges in `O(log n)`).
pub fn awerbuch_shiloach(g: &CsrGraph) -> Vec<Vid> {
    let n = g.num_vertices();
    let mut f: Vec<Vid> = (0..n).collect();
    let mut star = vec![true; n];
    let max_iters = 4 * (usize::BITS - n.leading_zeros()) as usize + 16;
    for _iter in 0..max_iters {
        let mut changed = 0;

        // Step 1: conditional star hooking.
        let mut hooks: Vec<(Vid, Vid)> = Vec::new();
        for (u, v) in g.edges() {
            if star[u] && f[u] > f[v] {
                hooks.push((f[u], f[v]));
            }
        }
        changed += apply_hooks(&mut f, &hooks);
        starcheck(&f, &mut star);

        // Step 2: unconditional star hooking.
        hooks.clear();
        for (u, v) in g.edges() {
            if star[u] && f[u] != f[v] {
                hooks.push((f[u], f[v]));
            }
        }
        changed += apply_hooks(&mut f, &hooks);
        starcheck(&f, &mut star);

        // Step 3: shortcutting (two-phase: read all grandparents, then
        // write).
        let gf: Vec<Vid> = (0..n).map(|v| f[f[v]]).collect();
        for v in 0..n {
            if !star[v] && f[v] != gf[v] {
                f[v] = gf[v];
                changed += 1;
            }
        }
        starcheck(&f, &mut star);

        if changed == 0 {
            debug_assert!(
                (0..n).all(|v| f[f[v]] == f[v]),
                "converged forest must be flat"
            );
            return f;
        }
    }
    panic!("Awerbuch-Shiloach did not converge within {max_iters} iterations");
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_graph::generators::*;
    use lacc_graph::stats::ground_truth_labels;
    use lacc_graph::unionfind::canonicalize_labels;

    fn check(g: &CsrGraph) {
        let f = awerbuch_shiloach(g);
        assert_eq!(canonicalize_labels(&f), ground_truth_labels(g));
    }

    #[test]
    fn basic_families() {
        check(&path_graph(1));
        check(&path_graph(2));
        check(&path_graph(100));
        check(&cycle_graph(101));
        check(&star_graph(50));
        check(&complete_graph(20));
        check(&random_forest(500, 13, 7));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..5 {
            check(&erdos_renyi_gnm(200, 150, seed)); // sparse, many comps
            check(&erdos_renyi_gnm(200, 800, seed)); // denser
        }
    }

    #[test]
    fn rmat_and_communities() {
        check(&rmat(8, 4, RmatParams::graph500(), 3));
        check(&community_graph(1000, 40, 3.0, 1.5, 5));
        check(&metagenome_graph(2000, 6, 0.01, 9));
    }

    #[test]
    fn empty_and_isolated() {
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(0)));
        check(&CsrGraph::from_edges(lacc_graph::EdgeList::new(10)));
    }

    #[test]
    fn starcheck_identifies_stars_exactly() {
        // Forest: 0←1,0←2 (star); 3←4←5 is a chain (nonstar): f[5]=4,f[4]=3.
        let f = vec![0, 0, 0, 3, 3, 4];
        let mut star = vec![false; 6];
        starcheck(&f, &mut star);
        assert_eq!(star, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn starcheck_does_not_resurrect_level3() {
        // Height-3 tree: root 0 ← 1 ← 2. The literal Algorithm 2 would
        // re-mark vertex 2 as a star via its (still-true) parent 1.
        let f = vec![0, 0, 1];
        let mut star = vec![true; 3];
        starcheck(&f, &mut star);
        assert_eq!(star, vec![false, false, false]);
    }

    #[test]
    fn starcheck_singletons_are_stars() {
        let f = vec![0, 1, 2];
        let mut star = vec![false; 3];
        starcheck(&f, &mut star);
        assert!(star.iter().all(|&s| s));
    }

    #[test]
    fn converges_in_logarithmic_iterations() {
        // A path is the adversarial case for pointer jumping; the panic
        // guard inside awerbuch_shiloach enforces the O(log n) bound.
        check(&path_graph(4096));
    }
}
