//! Property tests: dynamic label-range narrowing must be invisible in
//! everything except bytes.
//!
//! With `narrow_labels` on vs off, a run must produce identical labels,
//! identical iteration counts, and identical per-rank `words_sent` —
//! across every engine, both vector layouts, and both index widths. The
//! forced-dictionary variant pins `narrow_u16_max` to zero so every
//! narrowed exchange goes through the dictionary tier, exercising
//! dictionary builds, cross-iteration reuse, and shortcut invalidation
//! followed by a rebuild over the (possibly colliding) surviving labels.

use dmsim::{TraceLevel, TraceSink};
use lacc::{run, EngineSelect, IndexWidth, LaccOpts, RunConfig};
use lacc_graph::{CsrGraph, EdgeList};
use proptest::prelude::*;

const RANKS: usize = 4;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..48).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..120)
            .prop_map(move |pairs| CsrGraph::from_edges(EdgeList::from_pairs(n, pairs)))
    })
}

/// Runs one configuration and returns the narrowing-sensitive profile:
/// labels, iteration count, and per-rank word counts.
fn profile(
    g: &CsrGraph,
    engine: EngineSelect,
    cyclic: bool,
    width: IndexWidth,
    narrow: bool,
    force_dict: bool,
) -> (Vec<usize>, usize, Vec<u64>) {
    let mut opts = LaccOpts::builder()
        .engine(engine)
        .cyclic_vectors(cyclic)
        .index_width(width)
        .narrow_labels(narrow)
        .build();
    if force_dict {
        // Never raw u16, always eligible for the dictionary: every
        // narrowed iteration builds or reuses a dictionary, and every
        // shortcut that moves labels invalidates it for a rebuild.
        opts.dist.narrow_u16_max = 0;
        opts.dist.narrow_dict_max = 1 << 20;
    }
    let sink = TraceSink::new(TraceLevel::Steps);
    let cfg = RunConfig::new(RANKS, dmsim::EDISON.lacc_model())
        .with_opts(opts)
        .with_trace(&sink);
    let out = run(g, &cfg).expect("rank panicked");
    let saved: u64 = sink
        .rank_traces()
        .iter()
        .map(|rt| rt.snapshot.narrow_saved_bytes)
        .sum();
    assert!(
        narrow || saved == 0,
        "narrow_saved_bytes must be zero with narrowing off (got {saved})"
    );
    let words: Vec<u64> = sink
        .rank_traces()
        .iter()
        .map(|rt| rt.snapshot.words_sent)
        .collect();
    (out.run.labels.clone(), out.run.num_iterations(), words)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn narrowing_is_bit_identical_across_the_matrix(
        g in arb_graph(),
        cyclic in proptest::bool::ANY,
        wide in proptest::bool::ANY,
    ) {
        let width = if wide { IndexWidth::U64 } else { IndexWidth::U32 };
        for engine in [
            EngineSelect::Lacc,
            EngineSelect::Fastsv,
            EngineSelect::LabelProp,
        ] {
            let base = profile(&g, engine, cyclic, width, false, false);
            for force_dict in [false, true] {
                let narrowed = profile(&g, engine, cyclic, width, true, force_dict);
                prop_assert_eq!(
                    &base.0, &narrowed.0,
                    "labels diverged (engine {}, cyclic {}, width {}, dict {})",
                    engine, cyclic, width, force_dict
                );
                prop_assert_eq!(
                    base.1, narrowed.1,
                    "iteration count diverged (engine {}, dict {})",
                    engine, force_dict
                );
                prop_assert_eq!(
                    &base.2, &narrowed.2,
                    "per-rank words_sent diverged (engine {}, cyclic {}, width {}, dict {})",
                    engine, cyclic, width, force_dict
                );
            }
        }
    }
}
