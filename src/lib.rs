//! Umbrella crate for the LACC reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See `README.md` for the project overview and
//! `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

pub use dmsim;
pub use gblas;
pub use lacc;
pub use lacc_baselines as baselines;
pub use lacc_graph as graph;
