//! Quickstart: find connected components with LACC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small graph, runs serial LACC, then the distributed version on
//! a simulated 4-rank machine, and cross-checks both against union-find.

use lacc_suite::baselines::union_find_cc;
use lacc_suite::graph::generators::community_graph;
use lacc_suite::graph::unionfind::canonicalize_labels;
use lacc_suite::lacc::{lacc_serial, run, LaccOpts, RunConfig};

fn main() {
    // A protein-similarity-like graph: 20k vertices, ~300 components.
    let g = community_graph(20_000, 300, 8.0, 1.4, 7);
    println!(
        "graph: {} vertices, {} undirected edges",
        g.num_vertices(),
        g.num_undirected_edges()
    );

    // 1. Serial LACC (the LAGraph-style reference).
    let serial = lacc_serial(&g, &LaccOpts::default());
    println!(
        "serial LACC: {} components in {} iterations ({:.1} ms)",
        serial.num_components(),
        serial.num_iterations(),
        serial.wall_s * 1e3
    );

    // 2. Distributed LACC on a simulated 2x2 process grid with the
    //    Edison machine model.
    let model = lacc_suite::dmsim::EDISON.lacc_model();
    let dist = run(&g, &RunConfig::new(4, model)).unwrap();
    println!(
        "distributed LACC (p=4): {} components, modeled {:.2} ms, wall {:.1} ms",
        dist.num_components(),
        dist.modeled_total_s * 1e3,
        dist.wall_s * 1e3
    );

    // 3. Verify against union-find.
    let truth = union_find_cc(&g);
    assert_eq!(canonicalize_labels(&serial.labels), truth);
    assert_eq!(canonicalize_labels(&dist.labels), truth);
    println!("verified: both labelings match union-find ground truth");

    // Peek at the convergence profile (Figure 7's data for this graph).
    print!("converged fraction per iteration:");
    for f in serial.converged_fractions() {
        print!(" {:.0}%", f * 100.0);
    }
    println!();
}
