//! Web-crawl connectivity analysis: algorithm shoot-out.
//!
//! ```text
//! cargo run --release --example web_graph_analysis
//! ```
//!
//! Builds a web-crawl-like RMAT graph (skewed degrees, one giant
//! component plus fringe) and runs every connected-components algorithm in
//! the workspace on it — serial baselines in wall time, distributed
//! algorithms in modeled machine time — then checks they all agree.

use lacc_suite::baselines as b;
use lacc_suite::dmsim::EDISON;
use lacc_suite::graph::generators::{rmat, RmatParams};
use lacc_suite::graph::unionfind::{canonicalize_labels, count_components};
use lacc_suite::lacc::{self, LaccOpts};
use std::time::Instant;

fn main() {
    let g = rmat(14, 12, RmatParams::web(), 2026);
    println!(
        "web graph: {} vertices, {} undirected edges, max degree {}",
        g.num_vertices(),
        g.num_undirected_edges(),
        (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap()
    );

    let truth = b::union_find_cc(&g);
    let ncomp = count_components(&truth);
    let giant = {
        let mut counts = std::collections::HashMap::new();
        for &l in &truth {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        *counts.values().max().unwrap()
    };
    println!(
        "{ncomp} components; giant component covers {:.1}% of vertices\n",
        100.0 * giant as f64 / g.num_vertices() as f64
    );

    let check = |name: &str, labels: Vec<usize>, elapsed: f64, unit: &str| {
        assert_eq!(canonicalize_labels(&labels), truth, "{name} disagrees");
        println!("  {name:<34} {elapsed:>9.2} {unit}");
    };

    println!("serial / shared-memory (wall ms):");
    let t = Instant::now();
    let labels = b::union_find_cc(&g);
    check(
        "union-find (serial optimum)",
        labels,
        t.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    let t = Instant::now();
    let labels = b::bfs_cc(&g);
    check("BFS", labels, t.elapsed().as_secs_f64() * 1e3, "ms");
    let t = Instant::now();
    let labels = b::shiloach_vishkin_cc(&g);
    check(
        "Shiloach-Vishkin (threads)",
        labels,
        t.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    let t = Instant::now();
    let labels = b::label_propagation_cc(&g);
    check(
        "label propagation (threads)",
        labels,
        t.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    let t = Instant::now();
    let labels = b::multistep_cc(&g);
    check(
        "Multistep (BFS + label prop)",
        labels,
        t.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    let t = Instant::now();
    let labels = b::fastsv_cc(&g);
    check(
        "FastSV (serial)",
        labels,
        t.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    let t = Instant::now();
    let run = lacc::lacc_serial(&g, &LaccOpts::default());
    check(
        "LACC (serial GraphBLAS)",
        run.labels,
        t.elapsed().as_secs_f64() * 1e3,
        "ms",
    );

    println!("\ndistributed on 16 simulated Edison nodes (modeled ms):");
    let run = lacc::run(&g, &lacc::RunConfig::new(64, EDISON.lacc_model())).unwrap();
    check(
        "LACC (p=64, 4 ranks/node)",
        run.labels.clone(),
        run.modeled_total_s * 1e3,
        "ms (modeled)",
    );
    let pc = b::parconnect_sim(&g, 361, EDISON.flat_model()).unwrap();
    check(
        "ParConnect-sim (p=361, flat)",
        pc.labels,
        pc.modeled_total_s * 1e3,
        "ms (modeled)",
    );

    println!("\nall algorithms agree with union-find ground truth");
}
