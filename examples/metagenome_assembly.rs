//! Metagenome assembly binning (the paper's §I motivation).
//!
//! ```text
//! cargo run --release --example metagenome_assembly
//! ```
//!
//! Metagenome assemblers represent partially assembled reads as a huge,
//! extremely sparse graph whose connected components can be processed
//! independently (the paper's M3 workload). This example:
//!
//! 1. generates an M3-like assembly graph (contig paths + repeat edges),
//! 2. labels components with distributed LACC on a simulated machine,
//! 3. extracts per-component "bins" and prints the size histogram an
//!    assembler would farm out to workers.

use lacc_suite::dmsim::EDISON;
use lacc_suite::graph::generators::metagenome_graph;
use lacc_suite::graph::stats::graph_stats;
use lacc_suite::lacc::{run, RunConfig};
use std::collections::BTreeMap;

fn main() {
    let g = metagenome_graph(200_000, 7, 0.004, 11);
    let stats = graph_stats(&g);
    println!(
        "assembly graph: {} vertices, {} directed edges, avg degree {:.2}",
        stats.vertices, stats.directed_edges, stats.avg_degree
    );

    let run = run(&g, &RunConfig::new(16, EDISON.lacc_model())).unwrap();
    println!(
        "LACC (p=16): {} components in {} iterations, modeled {:.1} ms",
        run.num_components(),
        run.num_iterations(),
        run.modeled_total_s * 1e3
    );
    assert_eq!(run.num_components(), stats.components);

    // The sparsity story: on this graph most components converge late
    // (paper §VI-E) — print the profile.
    print!("converged fraction per iteration:");
    for f in run.converged_fractions() {
        print!(" {:.0}%", f * 100.0);
    }
    println!();

    // Bin vertices by component and histogram the bin sizes.
    let mut bin_size: BTreeMap<usize, usize> = BTreeMap::new();
    for &label in &run.labels {
        *bin_size.entry(label).or_insert(0) += 1;
    }
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    for &size in bin_size.values() {
        *hist.entry(size).or_insert(0) += 1;
    }
    println!("\nbin-size histogram (size -> count), top of the distribution:");
    for (size, count) in hist.iter().take(12) {
        println!("  {size:>6} vertices : {count} bins");
    }
    let largest = bin_size.values().max().copied().unwrap_or(0);
    println!(
        "largest bin: {largest} vertices ({:.2}% of the graph)",
        100.0 * largest as f64 / stats.vertices as f64
    );
}
