//! Markov clustering of a protein-similarity network (§VI-F).
//!
//! ```text
//! cargo run --release --example protein_clustering
//! ```
//!
//! HipMCL iterates *expansion* (sparse matrix squaring), *inflation*
//! (Hadamard power + column rescale) and *pruning* until the matrix
//! converges, then extracts clusters as the connected components of the
//! converged matrix — the step LACC accelerates at scale. This example is
//! a compact single-node HipMCL built on this workspace's SpGEMM, with
//! LACC doing the final component extraction.

use lacc_suite::gblas::serial::{map_values, max_abs_diff, normalize_columns, spgemm, Csc, Prune};
use lacc_suite::graph::generators::community_graph;
use lacc_suite::graph::{CsrGraph, EdgeList};
use lacc_suite::lacc::{lacc_serial, LaccOpts};

/// Inflation: Hadamard power then column rescale.
fn inflate(m: &Csc<f64>, r: f64) -> Csc<f64> {
    normalize_columns(&map_values(m, |v| v.powf(r)))
}

fn main() {
    // A protein-similarity-like network with planted communities.
    let n = 2_000;
    let g = community_graph(n, 60, 6.0, 1.3, 13);
    println!(
        "similarity network: {} proteins, {} undirected similarities",
        g.num_vertices(),
        g.num_undirected_edges()
    );

    // Build the column-stochastic transition matrix (self loops added, as
    // MCL prescribes).
    let mut triples: Vec<(usize, usize, f64)> = g.edges().map(|(u, v)| (u, v, 1.0)).collect();
    for v in 0..n {
        triples.push((v, v, 1.0));
    }
    let mut m = normalize_columns(&Csc::from_triples(n, n, triples));

    // MCL iterations: expansion, inflation, pruning.
    let prune = Prune {
        threshold: 1e-4,
        max_per_column: 64,
    };
    let inflation = 2.0;
    for iter in 1..=40 {
        let expanded = spgemm(&m, &m, prune);
        let next = inflate(&expanded, inflation);
        let delta = max_abs_diff(&m, &next);
        m = next;
        if iter % 5 == 0 || delta < 1e-6 {
            println!(
                "  MCL iteration {iter:>2}: nnz = {:>7}, max delta = {delta:.2e}",
                m.nnz()
            );
        }
        if delta < 1e-6 {
            break;
        }
    }

    // Cluster extraction: symmetrize the converged matrix and find its
    // connected components with LACC — exactly the HipMCL call path.
    let mut el = EdgeList::new(n);
    for (i, j, _) in m.triples() {
        if i != j {
            el.push(i, j);
        }
    }
    let cluster_graph = CsrGraph::from_edges(el);
    let run = lacc_serial(&cluster_graph, &LaccOpts::default());
    println!(
        "\nLACC on the converged matrix: {} clusters in {} iterations",
        run.num_components(),
        run.num_iterations()
    );

    // Cluster-size summary.
    let mut sizes = std::collections::HashMap::new();
    for &l in &run.labels {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = sizes.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "largest clusters: {:?} (of {} total)",
        &sizes[..sizes.len().min(10)],
        sizes.len()
    );
}
