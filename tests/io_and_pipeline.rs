//! End-to-end pipeline tests: file I/O → permutation → distributed LACC.

use lacc_suite::graph::generators::{community_graph, rmat, RmatParams};
use lacc_suite::graph::io;
use lacc_suite::graph::permute::Permutation;
use lacc_suite::graph::stats::ground_truth_labels;
use lacc_suite::graph::unionfind::canonicalize_labels;
use lacc_suite::graph::CsrGraph;
use lacc_suite::lacc::{LaccOpts, RunConfig, RunOutput};

/// `lacc::run` in the positional shape these pipelines read naturally in.
fn run_with(
    g: &CsrGraph,
    p: usize,
    model: lacc_suite::dmsim::MachineModel,
    opts: &LaccOpts,
) -> Result<RunOutput, lacc_suite::dmsim::DmsimError> {
    lacc_suite::lacc::run(g, &RunConfig::new(p, model).with_opts(*opts))
}

#[test]
fn matrix_market_to_lacc_pipeline() {
    // Write a generated graph to Matrix Market, read it back, run LACC.
    let g = community_graph(500, 25, 4.0, 1.4, 31);
    let mut buf = Vec::new();
    io::write_matrix_market(&mut buf, &g.to_edgelist()).expect("write");
    let el = io::read_matrix_market(&buf[..]).expect("read");
    let g2 = CsrGraph::from_edges(el);
    assert_eq!(g, g2, "MM roundtrip must preserve the graph");
    let run = run_with(
        &g2,
        4,
        lacc_suite::dmsim::EDISON.lacc_model(),
        &LaccOpts::default(),
    )
    .unwrap();
    assert_eq!(canonicalize_labels(&run.labels), ground_truth_labels(&g));
}

#[test]
fn binary_roundtrip_pipeline() {
    let g = rmat(8, 4, RmatParams::web(), 44);
    let bytes = io::to_binary(&g.to_edgelist());
    let el = io::from_binary(bytes).expect("binary read");
    let g2 = CsrGraph::from_edges(el);
    assert_eq!(g, g2);
}

#[test]
fn permuted_pipeline_recovers_original_ids() {
    let g = community_graph(400, 20, 4.0, 1.4, 9);
    let perm = Permutation::random(400, 77);
    let h = perm.permute_graph(&g);
    // Solve on the permuted graph and map labels back.
    let run = run_with(
        &h,
        9,
        lacc_suite::dmsim::EDISON.lacc_model(),
        &LaccOpts::default(),
    )
    .unwrap();
    let labels_orig = perm.unpermute_labels(&run.labels);
    assert_eq!(canonicalize_labels(&labels_orig), ground_truth_labels(&g));
}

#[test]
fn edge_list_text_pipeline() {
    let g = rmat(7, 3, RmatParams::graph500(), 5);
    let mut buf = Vec::new();
    io::write_edge_list(&mut buf, &g.to_edgelist()).expect("write");
    let el = io::read_edge_list(&buf[..], Some(g.num_vertices())).expect("read");
    assert_eq!(CsrGraph::from_edges(el), g);
}
