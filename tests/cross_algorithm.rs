//! Cross-crate agreement: every connected-components implementation in the
//! workspace must produce the same partition on the full generator zoo.

use lacc_suite::baselines as b;
use lacc_suite::graph::generators::*;
use lacc_suite::graph::unionfind::canonicalize_labels;
use lacc_suite::graph::CsrGraph;
use lacc_suite::lacc::{self, LaccOpts};

/// `lacc::run` in the positional shape the zoo sweep reads naturally in.
fn run_with(
    g: &CsrGraph,
    p: usize,
    model: lacc_suite::dmsim::MachineModel,
    opts: &LaccOpts,
) -> Result<lacc::RunOutput, lacc_suite::dmsim::DmsimError> {
    lacc::run(g, &lacc::RunConfig::new(p, model).with_opts(*opts))
}

fn zoo() -> Vec<(String, CsrGraph)> {
    vec![
        ("path_1000".into(), path_graph(1000)),
        ("cycle_257".into(), cycle_graph(257)),
        ("star_100".into(), star_graph(100)),
        ("complete_30".into(), complete_graph(30)),
        ("forest".into(), random_forest(800, 17, 5)),
        ("er_sparse".into(), erdos_renyi_gnm(600, 500, 1)),
        ("er_dense".into(), erdos_renyi_gnm(400, 3000, 2)),
        ("rmat".into(), rmat(9, 6, RmatParams::graph500(), 3)),
        ("community".into(), community_graph(2000, 80, 3.5, 1.4, 4)),
        ("metagenome".into(), metagenome_graph(3000, 6, 0.008, 5)),
        ("mesh3d".into(), mesh_3d(8, 8, 8)),
        ("barabasi_albert".into(), barabasi_albert(1000, 3, 6)),
        ("watts_strogatz".into(), watts_strogatz(500, 6, 0.2, 7)),
        (
            "empty".into(),
            CsrGraph::from_edges(lacc_suite::graph::EdgeList::new(50)),
        ),
    ]
}

#[test]
fn all_serial_algorithms_agree() {
    for (name, g) in zoo() {
        let truth = b::union_find_cc(&g);
        let algos: Vec<(&str, Vec<usize>)> = vec![
            ("bfs", b::bfs_cc(&g)),
            ("sv", b::shiloach_vishkin_cc(&g)),
            ("labelprop", b::label_propagation_cc(&g)),
            ("multistep", b::multistep_cc(&g)),
            ("fastsv", b::fastsv_cc(&g)),
            ("as_ref", lacc::asref::awerbuch_shiloach(&g)),
            (
                "lacc_serial",
                lacc::lacc_serial(&g, &LaccOpts::default()).labels,
            ),
            (
                "lacc_dense",
                lacc::lacc_serial(&g, &LaccOpts::dense_as()).labels,
            ),
        ];
        for (algo, labels) in algos {
            assert_eq!(
                canonicalize_labels(&labels),
                truth,
                "{algo} differs from union-find on {name}"
            );
        }
    }
}

#[test]
fn distributed_algorithms_agree() {
    for (name, g) in zoo() {
        let truth = b::union_find_cc(&g);
        let model = lacc_suite::dmsim::EDISON.lacc_model();
        let run = run_with(&g, 4, model, &LaccOpts::default()).unwrap();
        assert_eq!(
            canonicalize_labels(&run.labels),
            truth,
            "dist LACC on {name}"
        );
        if g.num_vertices() > 0 {
            let pc = b::parconnect_sim(&g, 4, lacc_suite::dmsim::EDISON.flat_model()).unwrap();
            assert_eq!(
                canonicalize_labels(&pc.labels),
                truth,
                "parconnect on {name}"
            );
        }
    }
}

#[test]
fn component_counts_match_generator_contracts() {
    // Generators promise exact component counts; LACC must recover them.
    let g = random_forest(2000, 37, 9);
    let run = lacc::lacc_serial(&g, &LaccOpts::default());
    assert_eq!(run.num_components(), 37);

    let g = community_graph(3000, 120, 4.0, 1.5, 2);
    let run = lacc::lacc_serial(&g, &LaccOpts::default());
    assert_eq!(run.num_components(), 120);
}
