//! Property-based tests over randomly generated graphs.
//!
//! Each property runs against arbitrary edge lists (not generator output),
//! so the shapes proptest shrinks toward are unconstrained — this is the
//! suite that originally surfaced the Lemma-1 counterexample now kept in
//! `lacc::serial::tests`.

use lacc_suite::baselines as b;
use lacc_suite::graph::unionfind::canonicalize_labels;
use lacc_suite::graph::{CsrGraph, EdgeList};
use lacc_suite::lacc::{self, LaccOpts};
use proptest::prelude::*;

/// `lacc::run` in the positional shape the properties read naturally in.
fn run_with(
    g: &CsrGraph,
    p: usize,
    model: lacc_suite::dmsim::MachineModel,
    opts: &LaccOpts,
) -> Result<lacc::RunOutput, lacc_suite::dmsim::DmsimError> {
    lacc::run(g, &lacc::RunConfig::new(p, model).with_opts(*opts))
}

/// Arbitrary graph: up to `nmax` vertices and `mmax` random edges.
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = CsrGraph> {
    (1..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..mmax)
            .prop_map(move |pairs| CsrGraph::from_edges(EdgeList::from_pairs(n, pairs)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lacc_serial_matches_union_find(g in arb_graph(120, 300)) {
        let run = lacc::lacc_serial(&g, &LaccOpts::default());
        prop_assert_eq!(canonicalize_labels(&run.labels), b::union_find_cc(&g));
    }

    #[test]
    fn lacc_dense_matches_union_find(g in arb_graph(100, 250)) {
        let run = lacc::lacc_serial(&g, &LaccOpts::dense_as());
        prop_assert_eq!(canonicalize_labels(&run.labels), b::union_find_cc(&g));
    }

    #[test]
    fn final_forest_is_flat(g in arb_graph(100, 250)) {
        let run = lacc::lacc_serial(&g, &LaccOpts::default());
        for v in 0..g.num_vertices() {
            prop_assert_eq!(run.labels[run.labels[v]], run.labels[v]);
        }
    }

    #[test]
    fn converged_fraction_is_monotone(g in arb_graph(150, 400)) {
        let run = lacc::lacc_serial(&g, &LaccOpts::default());
        let fr = run.converged_fractions();
        prop_assert!(fr.windows(2).all(|w| w[0] <= w[1]), "{:?}", fr);
        if g.num_vertices() > 0 {
            prop_assert_eq!(*fr.last().unwrap(), 1.0);
        }
    }

    #[test]
    fn iteration_count_is_logarithmic(g in arb_graph(200, 500)) {
        let run = lacc::lacc_serial(&g, &LaccOpts::default());
        let n = g.num_vertices().max(2);
        let bound = 2 * (usize::BITS - n.leading_zeros()) as usize + 4;
        prop_assert!(run.num_iterations() <= bound,
            "{} iterations for n={}", run.num_iterations(), n);
    }

    #[test]
    fn distributed_matches_serial_bitwise(g in arb_graph(80, 200)) {
        let opts = LaccOpts { permute: false, ..LaccOpts::default() };
        let serial = lacc::lacc_serial(&g, &opts);
        let dist = run_with(&g, 4, lacc_suite::dmsim::EDISON.lacc_model(), &opts).unwrap();
        prop_assert_eq!(&dist.labels, &serial.labels);
    }

    #[test]
    fn threaded_and_adaptive_runs_match_serial_bitwise(
        g in arb_graph(80, 200),
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
        threshold in prop_oneof![Just(0.0f64), Just(0.5), Just(1.1)],
    ) {
        // End-to-end: intra-rank kernel threading and the adaptive
        // SpMV/SpMSpV dispatch threshold are pure performance knobs — the
        // parent vector must stay bit-identical to the serial run for any
        // setting of either.
        let mut opts = LaccOpts { permute: false, ..LaccOpts::default() };
        opts.dist.kernel_threads = threads;
        opts.dist.spmv_threshold = threshold;
        let serial = lacc::lacc_serial(&g, &opts);
        let dist = run_with(&g, 4, lacc_suite::dmsim::EDISON.lacc_model(), &opts).unwrap();
        prop_assert_eq!(&dist.labels, &serial.labels);
    }

    #[test]
    fn index_widths_agree_distributed(
        g in arb_graph(80, 200),
        cyclic in prop_oneof![Just(false), Just(true)],
        naive in prop_oneof![Just(false), Just(true)],
    ) {
        // The index width is a storage/wire layout knob: for any comm
        // stack (optimized or naive) and either vector distribution
        // (blocked or cyclic), the u32 run must match the u64 run in
        // labels and iteration count.
        use lacc_suite::gblas::dist::DistOpts;
        use lacc_suite::lacc::IndexWidth;
        let base = LaccOpts {
            permute: false,
            cyclic_vectors: cyclic,
            dist: if naive { DistOpts::naive() } else { DistOpts::default() },
            ..LaccOpts::default()
        };
        let model = lacc_suite::dmsim::EDISON.lacc_model();
        let narrow = run_with(
            &g, 4, model, &LaccOpts { index_width: IndexWidth::U32, ..base }).unwrap();
        let wide = run_with(
            &g, 4, model, &LaccOpts { index_width: IndexWidth::U64, ..base }).unwrap();
        prop_assert_eq!(&narrow.labels, &wide.labels);
        prop_assert_eq!(narrow.num_iterations(), wide.num_iterations());
    }

    #[test]
    fn overlap_is_invisible_in_results_and_traffic(
        g in arb_graph(80, 200),
        engine in prop_oneof![
            Just(lacc::EngineSelect::Lacc),
            Just(lacc::EngineSelect::Fastsv),
            Just(lacc::EngineSelect::LabelProp),
        ],
        cyclic in prop_oneof![Just(false), Just(true)],
        narrow in prop_oneof![Just(false), Just(true)],
    ) {
        // Non-blocking execution is a pure scheduling change: for every
        // engine, vector layout, and index width, overlap on and off must
        // produce bit-identical labels, the same iteration trajectory, and
        // move exactly the same words per rank — only the modeled clock
        // (and the hidden-seconds counter) may differ.
        use lacc_suite::dmsim::{TraceLevel, TraceSink};
        use lacc_suite::lacc::IndexWidth;
        let model = lacc_suite::dmsim::EDISON.lacc_model();
        let base = LaccOpts {
            permute: false,
            cyclic_vectors: cyclic,
            engine,
            index_width: if narrow { IndexWidth::U32 } else { IndexWidth::U64 },
            ..LaccOpts::default()
        };
        let run_traced = |overlap: bool| {
            let mut opts = base;
            opts.dist.overlap = overlap;
            let sink = TraceSink::new(TraceLevel::Steps);
            let out = lacc::run(
                &g,
                &lacc::RunConfig::new(4, model).with_opts(opts).with_trace(&sink),
            )
            .unwrap();
            (out, sink.report())
        };
        let (on, ron) = run_traced(true);
        let (off, roff) = run_traced(false);
        prop_assert_eq!(&on.labels, &off.labels);
        prop_assert_eq!(on.num_iterations(), off.num_iterations());
        prop_assert_eq!(&ron.rank_words, &roff.rank_words);
        prop_assert_eq!(roff.overlap_hidden_s, 0.0);
        prop_assert!(ron.overlap_hidden_s >= 0.0);
    }

    #[test]
    fn owner_partitioned_spmspv_matches_serial(
        g in arb_graph(150, 400),
        step in 1usize..8,
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        // The merge-free owner-partitioned accumulator must be
        // bit-identical to the serial SpMSpV kernel for every thread
        // count and input density.
        use lacc_suite::gblas::serial::{self as k, Pattern, SparseVec};
        use lacc_suite::gblas::{Mask, MinUsize};
        let n = g.num_vertices();
        let a = Pattern::from_graph(&g);
        let entries: Vec<(usize, usize)> = (0..n)
            .step_by(step)
            .map(|v| (v, v.wrapping_mul(2654435761) % n))
            .collect();
        let xs = SparseVec::from_entries(n, entries);
        let serial = k::mxv_sparse(&a, &xs, Mask::None, MinUsize);
        let par = k::mxv_sparse_par(&a, &xs, Mask::None, MinUsize, threads);
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn baselines_match_union_find(g in arb_graph(100, 250)) {
        let truth = b::union_find_cc(&g);
        prop_assert_eq!(b::bfs_cc(&g), truth.clone());
        prop_assert_eq!(canonicalize_labels(&b::shiloach_vishkin_cc(&g)), truth.clone());
        prop_assert_eq!(b::fastsv_cc(&g), truth.clone());
        prop_assert_eq!(b::label_propagation_cc(&g), truth);
    }

    #[test]
    fn starcheck_matches_bruteforce_oracle(
        parents in proptest::collection::vec(0usize..30, 1..30)
    ) {
        // Build a valid forest from an arbitrary parent suggestion: point
        // each vertex at min(parent, itself) to guarantee acyclicity, then
        // compare starcheck with a brute-force star oracle.
        let n = parents.len();
        let f: Vec<usize> = parents
            .iter()
            .enumerate()
            .map(|(v, &p)| p.min(v) % n)
            .collect();
        let mut star = vec![false; n];
        lacc::asref::starcheck(&f, &mut star);
        // Oracle: v is a star vertex iff every member of its tree is at
        // depth ≤ 1 below the root.
        let root_of = |mut v: usize| {
            for _ in 0..n + 1 {
                if f[v] == v { return v; }
                v = f[v];
            }
            unreachable!("forest has a cycle");
        };
        #[allow(clippy::needless_range_loop)] // v is a vertex id, not just an index
        for v in 0..n {
            let r = root_of(v);
            let tree: Vec<usize> = (0..n).filter(|&u| root_of(u) == r).collect();
            let is_star = tree.iter().all(|&u| f[u] == r);
            prop_assert_eq!(star[v], is_star, "vertex {} in forest {:?}", v, f);
        }
    }
}
