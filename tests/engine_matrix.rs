//! Engine-portfolio matrix: every `CcEngine` must compute the same
//! partition through every configuration of the distributed stack.
//!
//! For each generated graph, runs all three engines (LACC, FastSV, label
//! propagation) across naive vs optimized communication, blocked vs
//! cyclic vector layout, and u32 vs u64 index width, and requires
//! identical *canonical* labels everywhere (LACC's raw labels are
//! tree-root ids while FastSV/labelprop converge to component minima, so
//! raw bit-equality across engines is not expected — canonical equality
//! is the cross-engine contract). `Auto` must route to a valid engine,
//! report a rationale, and agree with the ground truth too.

use lacc_suite::baselines as b;
use lacc_suite::gblas::dist::DistOpts;
use lacc_suite::graph::generators::*;
use lacc_suite::graph::unionfind::canonicalize_labels;
use lacc_suite::graph::{CsrGraph, EdgeList};
use lacc_suite::lacc::{self, EngineKind, EngineSelect, IndexWidth, LaccOpts};
use proptest::prelude::*;

fn run_engine(g: &CsrGraph, opts: LaccOpts) -> lacc::RunOutput {
    let cfg = lacc::RunConfig::new(4, lacc_suite::dmsim::EDISON.lacc_model()).with_opts(opts);
    lacc::run(g, &cfg).expect("engine rank panicked")
}

/// The full engine × comm × layout × width sweep on one graph: every
/// cell's canonical labels must equal serial union-find's.
fn assert_matrix_agrees(name: &str, g: &CsrGraph) {
    let truth = b::union_find_cc(g);
    for engine in [
        EngineSelect::Lacc,
        EngineSelect::Fastsv,
        EngineSelect::LabelProp,
    ] {
        for naive in [false, true] {
            for cyclic in [false, true] {
                for width in [IndexWidth::U32, IndexWidth::U64] {
                    let opts = LaccOpts {
                        engine,
                        cyclic_vectors: cyclic,
                        index_width: width,
                        dist: if naive {
                            DistOpts::naive()
                        } else {
                            DistOpts::default()
                        },
                        ..LaccOpts::default()
                    };
                    let out = run_engine(g, opts);
                    assert_eq!(
                        canonicalize_labels(&out.labels),
                        truth,
                        "{engine} naive={naive} cyclic={cyclic} {width} on {name}"
                    );
                }
            }
        }
    }
}

#[test]
fn engine_matrix_agrees_on_generator_suite() {
    let suite: Vec<(&str, CsrGraph)> = vec![
        ("path", path_graph(40)),
        ("star", star_graph(33)),
        ("forest", random_forest(60, 7, 5)),
        ("er", erdos_renyi_gnm(48, 70, 2)),
        ("rmat", rmat(5, 4, RmatParams::graph500(), 3)),
        ("community", community_graph(60, 6, 3.0, 1.4, 4)),
        ("empty", CsrGraph::from_edges(EdgeList::new(12))),
    ];
    for (name, g) in &suite {
        assert_matrix_agrees(name, g);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engine_matrix_agrees_on_arbitrary_graphs(
        n in 1usize..40,
        pairs in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = CsrGraph::from_edges(EdgeList::from_pairs(n, pairs));
        assert_matrix_agrees("arbitrary", &g);
    }

    #[test]
    fn auto_routes_to_a_valid_engine(
        n in 1usize..60,
        pairs in proptest::collection::vec((0usize..60, 0usize..60), 0..120),
    ) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = CsrGraph::from_edges(EdgeList::from_pairs(n, pairs));
        let out = run_engine(&g, LaccOpts {
            engine: EngineSelect::Auto,
            ..LaccOpts::default()
        });
        prop_assert!(matches!(
            out.engine,
            EngineKind::Lacc | EngineKind::Fastsv | EngineKind::LabelProp
        ));
        prop_assert!(out.rationale.is_some(), "auto must explain its choice");
        prop_assert_eq!(canonicalize_labels(&out.labels), b::union_find_cc(&g));
    }
}
