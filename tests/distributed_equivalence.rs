//! Distributed-vs-serial equivalence across the configuration matrix.
//!
//! The strongest correctness statement in the workspace: with the
//! load-balancing permutation disabled, distributed LACC must produce a
//! parent vector *bit-identical* to serial LACC — for every grid size,
//! every all-to-all algorithm, and with the hot-rank broadcast on or off.

use dmsim::AllToAll;
use gblas::dist::DistOpts;
use lacc_suite::dmsim::{CORI_KNL, EDISON};
use lacc_suite::graph::generators::*;
use lacc_suite::graph::CsrGraph;
use lacc_suite::lacc::{lacc_serial, LaccOpts, RunConfig, RunOutput};

/// `lacc::run` in the positional shape the configuration matrix below
/// reads naturally in.
fn run_with(
    g: &CsrGraph,
    p: usize,
    model: lacc_suite::dmsim::MachineModel,
    opts: &LaccOpts,
) -> Result<RunOutput, lacc_suite::dmsim::DmsimError> {
    lacc_suite::lacc::run(g, &RunConfig::new(p, model).with_opts(*opts))
}

#[test]
fn bit_identical_across_comm_configs() {
    let g = community_graph(900, 45, 3.0, 1.4, 21);
    let base = LaccOpts {
        permute: false,
        ..LaccOpts::default()
    };
    let serial = lacc_serial(&g, &base);
    for p in [1, 4, 9, 16, 25] {
        for algo in [
            AllToAll::Direct,
            AllToAll::Pairwise,
            AllToAll::Hypercube,
            AllToAll::Sparse,
        ] {
            for hot in [false, true] {
                let opts = LaccOpts {
                    dist: DistOpts {
                        alltoall: algo,
                        hot_bcast: hot,
                        hot_threshold: 2.0,
                        ..DistOpts::default()
                    },
                    ..base
                };
                let run = run_with(&g, p, EDISON.lacc_model(), &opts).unwrap();
                assert_eq!(run.labels, serial.labels, "p={p} algo={algo:?} hot={hot}");
            }
        }
    }
}

#[test]
fn machine_model_does_not_change_results() {
    let g = rmat(8, 5, RmatParams::web(), 6);
    let opts = LaccOpts {
        permute: false,
        ..LaccOpts::default()
    };
    let a = run_with(&g, 9, EDISON.lacc_model(), &opts).unwrap();
    let b = run_with(&g, 9, CORI_KNL.flat_model(), &opts).unwrap();
    assert_eq!(a.labels, b.labels);
    // Modeled time must differ (KNL flat is slower per the model).
    assert!(b.modeled_total_s > a.modeled_total_s);
}

#[test]
fn permutation_changes_work_not_answer() {
    let g = metagenome_graph(1500, 6, 0.01, 8);
    let with = run_with(&g, 16, EDISON.lacc_model(), &LaccOpts::default()).unwrap();
    let without = run_with(
        &g,
        16,
        EDISON.lacc_model(),
        &LaccOpts {
            permute: false,
            ..LaccOpts::default()
        },
    )
    .unwrap();
    use lacc_suite::graph::unionfind::canonicalize_labels;
    assert_eq!(
        canonicalize_labels(&with.labels),
        canonicalize_labels(&without.labels)
    );
}

#[test]
fn dense_as_and_lacc_agree_distributed() {
    let g = erdos_renyi_gnm(700, 900, 17);
    let a = run_with(&g, 4, EDISON.lacc_model(), &LaccOpts::default()).unwrap();
    let d = run_with(&g, 4, EDISON.lacc_model(), &LaccOpts::dense_as()).unwrap();
    use lacc_suite::graph::unionfind::canonicalize_labels;
    assert_eq!(
        canonicalize_labels(&a.labels),
        canonicalize_labels(&d.labels)
    );
    // Sparsity must reduce modeled work on a many-component graph. The
    // comparison runs with sender-side compaction and in-flight combining
    // off: the dense active set's extra traffic is so redundant that
    // dedup/compression/combining erases most of the gap, and this
    // assertion is about active-set sparsity.
    let no_compaction = DistOpts {
        dedup_requests: false,
        combine_assigns: false,
        compress_ids: false,
        combine_in_flight: false,
        fuse_starcheck: false,
        compress_values: false,
        ..DistOpts::default()
    };
    let g = community_graph(4000, 200, 3.0, 1.4, 3);
    let a = run_with(
        &g,
        16,
        EDISON.lacc_model(),
        &LaccOpts {
            dist: no_compaction,
            ..LaccOpts::default()
        },
    )
    .unwrap();
    let d = run_with(
        &g,
        16,
        EDISON.lacc_model(),
        &LaccOpts {
            dist: no_compaction,
            ..LaccOpts::dense_as()
        },
    )
    .unwrap();
    assert!(
        a.modeled_total_s < d.modeled_total_s,
        "sparsity should win: {} vs {}",
        a.modeled_total_s,
        d.modeled_total_s
    );
}
